// Tests for the extension features: victim-specific interval bounds,
// stuck-at faults (injector, simulator, adversary), stochastic rounding,
// and the simulator's reset accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/sim.hpp"
#include "fault/adversary.hpp"
#include "fault/injector.hpp"
#include "fault/refined_bound.hpp"
#include "nn/builder.hpp"
#include "quant/quantized_network.hpp"
#include "util/stats.hpp"

namespace wnf {
namespace {

nn::FeedForwardNetwork ext_net(std::uint64_t seed = 5) {
  Rng rng(seed);
  return nn::NetworkBuilder(2)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(8)
      .hidden(6)
      .init(nn::InitKind::kUniform, 0.7)
      .build(rng);
}

// ---------- interval (victim-specific) bound ------------------------------

TEST(IntervalBound, NeverBelowMeasuredNeverAboveFep) {
  Rng rng(11);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  for (int round = 0; round < 30; ++round) {
    const auto net = ext_net(100 + round);
    fault::Injector injector(net);
    std::vector<std::size_t> counts(net.layer_count());
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      counts[l - 1] = rng.uniform_index(net.layer_width(l));
    }
    const auto plan = fault::random_crash_plan(net, counts, rng);
    const double interval = fault::interval_error_bound(net, plan, options);
    const double fep = fault::fep_for_plan(net, plan, options);
    EXPECT_LE(interval, fep + 1e-9);
    for (int probe = 0; probe < 5; ++probe) {
      std::vector<double> x{rng.uniform(), rng.uniform()};
      EXPECT_LE(injector.output_error(plan, x), interval + 1e-9);
    }
  }
}

TEST(IntervalBound, SingleTopLayerVictimIsExact) {
  // One crash at top-layer neuron j: interval = |w_out_j| * C, and the
  // measured error approaches it when y_j saturates to 1.
  auto net = ext_net();
  for (std::size_t j = 0; j < net.layer_width(2); ++j) {
    net.layer(2).bias()[j] = 12.0;  // saturate every top neuron: y ~ 1
  }
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  fault::FaultPlan plan;
  plan.neurons = {{2, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  const double interval = fault::interval_error_bound(net, plan, options);
  EXPECT_NEAR(interval, std::fabs(net.output_weights()[3]), 1e-12);
  fault::Injector injector(net);
  const std::vector<double> x{0.5, 0.5};
  EXPECT_NEAR(injector.output_error(plan, x), interval, 1e-6);
}

TEST(IntervalBound, RanksVictimsByOutgoingWeight) {
  auto net = ext_net();
  for (double& w : net.output_weights()) w = 0.01;
  net.output_weights()[2] = 2.0;
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  fault::FaultPlan heavy;
  heavy.neurons = {{2, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan light;
  light.neurons = {{2, 4, fault::NeuronFaultKind::kCrash, 0.0}};
  EXPECT_GT(fault::interval_error_bound(net, heavy, options),
            fault::interval_error_bound(net, light, options) * 50.0);
}

TEST(IntervalBound, EmptyPlanIsZero) {
  const auto net = ext_net();
  theory::FepOptions options;
  EXPECT_EQ(fault::interval_error_bound(net, fault::FaultPlan{}, options), 0.0);
}

TEST(IntervalBound, ByzantineCapacityScales) {
  const auto net = ext_net();
  theory::FepOptions options;
  options.mode = theory::FailureMode::kByzantine;
  fault::FaultPlan plan;
  plan.neurons = {{1, 0, fault::NeuronFaultKind::kByzantine, 0.0}};
  options.capacity = 1.0;
  const double base = fault::interval_error_bound(net, plan, options);
  options.capacity = 3.0;
  EXPECT_NEAR(fault::interval_error_bound(net, plan, options), 3.0 * base,
              1e-12);
}

// ---------- stuck-at faults ------------------------------------------------

TEST(StuckAt, InjectorFreezesOutput) {
  const auto net = ext_net();
  fault::Injector injector(net);
  const std::vector<double> x{0.3, 0.8};
  fault::FaultPlan plan;
  plan.neurons = {{2, 1, fault::NeuronFaultKind::kStuckAt, 0.75}};
  const auto trace = net.forward_trace(x);
  const double shift = injector.damaged(plan, x) - trace.output;
  EXPECT_NEAR(shift,
              net.output_weights()[1] * (0.75 - trace.activations[2][1]),
              1e-12);
}

TEST(StuckAt, CoveredByCrashModeFep) {
  Rng rng(13);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;  // C = sup phi = 1
  for (int round = 0; round < 20; ++round) {
    const auto net = ext_net(300 + round);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    std::vector<std::size_t> counts(net.layer_count());
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      counts[l - 1] = rng.uniform_index(net.layer_width(l));
    }
    const double bound =
        theory::forward_error_propagation(prof, counts, options);
    std::vector<double> x{rng.uniform(), rng.uniform()};
    const auto plan =
        fault::stuck_at_extreme_plan(net, counts, {x.data(), x.size()});
    EXPECT_LE(injector.output_error(plan, {x.data(), x.size()}),
              bound + 1e-9);
  }
}

TEST(StuckAt, ExtremePlanFreezesAtBounds) {
  const auto net = ext_net();
  const std::vector<double> x{0.4, 0.6};
  const std::vector<std::size_t> counts{2, 2};
  const auto plan = fault::stuck_at_extreme_plan(net, counts, x);
  ASSERT_EQ(plan.neurons.size(), 4u);
  for (const auto& fault : plan.neurons) {
    EXPECT_EQ(fault.kind, fault::NeuronFaultKind::kStuckAt);
    EXPECT_TRUE(fault.value == 0.0 || fault.value == 1.0);
  }
}

TEST(StuckAt, SimulatorMatchesInjector) {
  const auto net = ext_net();
  fault::FaultPlan plan;
  plan.neurons = {{1, 3, fault::NeuronFaultKind::kStuckAt, 0.25},
                  {2, 0, fault::NeuronFaultKind::kStuckAt, 1.0}};
  dist::NetworkSimulator sim(net, dist::SimConfig{});
  sim.apply_faults(plan);
  fault::Injector injector(net);
  Rng rng(17);
  for (int n = 0; n < 20; ++n) {
    std::vector<double> x{rng.uniform(), rng.uniform()};
    EXPECT_NEAR(sim.evaluate(x).output, injector.damaged(plan, x), 1e-12);
  }
}

TEST(StuckAt, StuckProcessKeepsNormalTiming) {
  // Unlike a Byzantine process (fires at t=0), a stuck process fires on
  // its usual schedule — only its value is frozen.
  const auto net = ext_net();
  dist::NetworkSimulator sim(net, dist::SimConfig{});
  std::vector<std::vector<double>> latencies{std::vector<double>(8, 2.0),
                                             std::vector<double>(6, 1.0)};
  sim.set_latencies(latencies);
  fault::FaultPlan plan;
  plan.neurons = {{1, 0, fault::NeuronFaultKind::kStuckAt, 0.5}};
  sim.apply_faults(plan);
  const std::vector<double> x{0.5, 0.5};
  EXPECT_DOUBLE_EQ(sim.evaluate(x).completion_time, 3.0);
}

// ---------- stochastic rounding ---------------------------------------------

TEST(StochasticRounding, StaysWithinOneUlp) {
  const quant::FixedPoint q(4, quant::Rounding::kStochastic);
  Rng rng(19);
  for (double v = 0.0; v <= 1.0; v += 0.013) {
    const double snapped = q.quantize(v, rng);
    EXPECT_LE(std::fabs(snapped - v), q.max_error() + 1e-15);
  }
}

TEST(StochasticRounding, IsUnbiased) {
  const quant::FixedPoint q(3, quant::Rounding::kStochastic);
  Rng rng(23);
  const double value = 0.3;  // not on the 1/8 grid
  Accumulator acc;
  for (int n = 0; n < 40000; ++n) acc.add(q.quantize(value, rng));
  EXPECT_NEAR(acc.mean(), value, 1e-3);
}

TEST(StochasticRounding, DeterministicModesIgnoreRng) {
  const quant::FixedPoint q(5, quant::Rounding::kNearest);
  Rng rng(29);
  EXPECT_DOUBLE_EQ(q.quantize(0.37, rng), q.quantize(0.37));
}

TEST(StochasticRounding, QuantizedEvalRespectsTheorem5) {
  const auto net = ext_net();
  quant::PrecisionScheme scheme;
  scheme.bits = {5, 5};
  scheme.rounding = quant::Rounding::kStochastic;
  theory::FepOptions options;
  const double bound = quant::quantization_error_bound(net, scheme, options);
  nn::Workspace ws;
  Rng rng(31);
  for (int n = 0; n < 50; ++n) {
    std::vector<double> x{rng.uniform(), rng.uniform()};
    scheme.stochastic_seed = 1000 + n;
    const double err = std::fabs(net.evaluate(x, ws) -
                                 quant::evaluate_quantized(net, x, scheme, ws));
    EXPECT_LE(err, bound + 1e-12);
  }
}

// ---------- simulator reset accounting --------------------------------------

TEST(Resets, CountsStragglersCut) {
  const auto net = ext_net();  // widths 8, 6
  dist::NetworkSimulator sim(net, dist::SimConfig{});
  std::vector<std::vector<double>> latencies{std::vector<double>(8, 1.0),
                                             std::vector<double>(6, 0.0)};
  latencies[0][1] = 9.0;
  latencies[0][5] = 9.0;
  sim.set_latencies(latencies);
  const std::vector<double> x{0.5, 0.5};
  // Full wait: nothing is cut.
  EXPECT_EQ(sim.evaluate(x).resets_sent, 0u);
  // Layer 2 waits for 6 of 8: each of the 6 receivers cuts 2 stragglers.
  const std::vector<std::size_t> wait{2, 6};
  const auto boosted = sim.evaluate_boosted(x, wait);
  EXPECT_EQ(boosted.resets_sent, 6u * 2u);
}

}  // namespace
}  // namespace wnf
