// Fault framework tests: plans, the injector's crash/Byzantine/synapse
// semantics against hand computations, adversary strategies, campaigns.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "fault/adversary.hpp"
#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "nn/builder.hpp"

namespace wnf::fault {
namespace {

nn::FeedForwardNetwork small_net(std::uint64_t seed = 5, double k = 1.0) {
  Rng rng(seed);
  return nn::NetworkBuilder(2)
      .activation(nn::ActivationKind::kSigmoid, k)
      .hidden(6)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.6)
      .build(rng);
}

TEST(FaultPlan, CountsPerLayer) {
  FaultPlan plan;
  plan.neurons = {{1, 0, NeuronFaultKind::kCrash, 0.0},
                  {1, 3, NeuronFaultKind::kCrash, 0.0},
                  {2, 1, NeuronFaultKind::kByzantine, 0.5}};
  plan.synapses = {{3, 0, 2, SynapseFaultKind::kByzantine, 1.0}};
  EXPECT_EQ(plan.neuron_counts(2), (std::vector<std::size_t>{2, 1}));
  EXPECT_EQ(plan.synapse_counts(2), (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_TRUE(plan.has_byzantine_neurons());
}

TEST(FaultPlan, ValidationAcceptsWellFormed) {
  const auto net = small_net();
  FaultPlan plan;
  plan.neurons = {{1, 5, NeuronFaultKind::kCrash, 0.0}};
  plan.synapses = {{3, 0, 4, SynapseFaultKind::kCrash, 0.0}};
  validate_plan(plan, net);  // must not abort
  SUCCEED();
}

TEST(Injector, EmptyPlanMatchesNominal) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.3, 0.9};
  EXPECT_DOUBLE_EQ(injector.damaged(FaultPlan{}, x), injector.nominal(x));
}

TEST(Injector, CrashRemovesExactContribution) {
  // Crashing neuron j of the top layer must move the output by exactly
  // w_out_j * y_j.
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.2, 0.6};
  const auto trace = net.forward_trace(x);
  for (std::size_t j = 0; j < net.layer_width(2); ++j) {
    FaultPlan plan;
    plan.neurons = {{2, j, NeuronFaultKind::kCrash, 0.0}};
    const double expected_shift =
        net.output_weights()[j] * trace.activations[2][j];
    EXPECT_NEAR(injector.nominal(x) - injector.damaged(plan, x),
                expected_shift, 1e-12);
  }
}

TEST(Injector, ByzantinePerturbationShiftsTopLayerLinearly) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.7, 0.1};
  FaultPlan plan;
  plan.convention = theory::CapacityConvention::kPerturbationBound;
  plan.neurons = {{2, 3, NeuronFaultKind::kByzantine, 0.25}};
  const double shift = injector.damaged(plan, x) - injector.nominal(x);
  EXPECT_NEAR(shift, net.output_weights()[3] * 0.25, 1e-12);
}

TEST(Injector, ByzantineTransmittedValueOverrides) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.7, 0.1};
  const auto trace = net.forward_trace(x);
  FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  plan.neurons = {{2, 3, NeuronFaultKind::kByzantine, 0.9}};
  const double shift = injector.damaged(plan, x) - injector.nominal(x);
  EXPECT_NEAR(shift, net.output_weights()[3] * (0.9 - trace.activations[2][3]),
              1e-12);
}

TEST(Injector, DeepByzantinePerturbationIsRelativeToNominal) {
  // A layer-1 Byzantine fault under the perturbation convention sets
  // y = y_nominal + lambda even though downstream neurons see damage.
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.4, 0.5};
  FaultPlan plan;
  plan.neurons = {{1, 2, NeuronFaultKind::kByzantine, 0.3}};
  // Indirect check: same fault with lambda then -lambda are symmetric
  // around nominal at first order only; instead verify via a hook-free
  // reference computation.
  const auto trace = net.forward_trace(x);
  nn::ForwardHooks hooks;
  hooks.post_activation = [&](std::size_t l, std::span<double> y) {
    if (l == 1) y[2] = trace.activations[1][2] + 0.3;
  };
  nn::Workspace ws;
  EXPECT_NEAR(injector.damaged(plan, x), net.evaluate_hooked(x, hooks, ws),
              1e-14);
}

TEST(Injector, SynapseCrashEqualsWeightZero) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.8, 0.3};
  FaultPlan plan;
  plan.synapses = {{1, 4, 1, SynapseFaultKind::kCrash, 0.0}};
  // Reference: clone the network with that weight zeroed.
  auto clone = net;
  clone.layer(1).weights()(4, 1) = 0.0;
  EXPECT_NEAR(injector.damaged(plan, x), clone.evaluate(x), 1e-14);
}

TEST(Injector, OutputSynapseCrash) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.5, 0.5};
  FaultPlan plan;
  plan.synapses = {{3, 0, 2, SynapseFaultKind::kCrash, 0.0}};
  const auto trace = net.forward_trace(x);
  EXPECT_NEAR(injector.nominal(x) - injector.damaged(plan, x),
              net.output_weights()[2] * trace.activations[2][2], 1e-12);
}

TEST(Injector, ByzantineSynapseAddsWeightedCorruption) {
  const auto net = small_net();
  Injector injector(net);
  const std::vector<double> x{0.5, 0.5};
  FaultPlan plan;
  plan.synapses = {{3, 0, 1, SynapseFaultKind::kByzantine, 0.7}};
  const double shift = injector.damaged(plan, x) - injector.nominal(x);
  EXPECT_NEAR(shift, net.output_weights()[1] * 0.7, 1e-12);
}

TEST(Injector, WorstOutputErrorIsMaxOverInputs) {
  const auto net = small_net();
  Injector injector(net);
  std::vector<std::vector<double>> inputs{{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.2}};
  FaultPlan plan;
  plan.neurons = {{2, 0, NeuronFaultKind::kCrash, 0.0}};
  double expected = 0.0;
  for (const auto& x : inputs) {
    expected = std::max(expected, injector.output_error(plan, x));
  }
  EXPECT_DOUBLE_EQ(
      injector.worst_output_error(plan, {inputs.data(), inputs.size()}),
      expected);
}

TEST(Adversary, RandomCrashPlanHasRequestedShape) {
  const auto net = small_net();
  Rng rng(7);
  const std::vector<std::size_t> counts{2, 3};
  const auto plan = random_crash_plan(net, counts, rng);
  validate_plan(plan, net);
  EXPECT_EQ(plan.neuron_counts(2), counts);
  for (const auto& fault : plan.neurons) {
    EXPECT_EQ(fault.kind, NeuronFaultKind::kCrash);
  }
}

TEST(Adversary, TopWeightPlanPicksKeyNeurons) {
  // Build a network where neuron 0 of the top layer clearly dominates.
  auto net = small_net();
  for (double& w : net.output_weights()) w = 0.01;
  net.output_weights()[4] = 5.0;
  const std::vector<std::size_t> counts{0, 1};
  const auto plan = top_weight_crash_plan(net, counts);
  ASSERT_EQ(plan.neurons.size(), 1u);
  EXPECT_EQ(plan.neurons[0].layer, 2u);
  EXPECT_EQ(plan.neurons[0].neuron, 4u);
}

TEST(Adversary, TopWeightBeatsRandomOnAverage) {
  const auto net = small_net(11);
  Injector injector(net);
  Rng rng(13);
  std::vector<std::vector<double>> probes;
  for (int n = 0; n < 16; ++n) probes.push_back({rng.uniform(), rng.uniform()});
  const std::vector<std::size_t> counts{0, 2};
  const auto top_plan = top_weight_crash_plan(net, counts);
  const double top_error =
      injector.worst_output_error(top_plan, {probes.data(), probes.size()});
  double random_total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto plan = random_crash_plan(net, counts, rng);
    random_total +=
        injector.worst_output_error(plan, {probes.data(), probes.size()});
  }
  EXPECT_GE(top_error, random_total / trials);
}

TEST(Adversary, GradientDirectedValuesHaveGradientSigns) {
  const auto net = small_net();
  const std::vector<double> x{0.3, 0.8};
  const std::vector<std::size_t> counts{1, 2};
  const auto plan = gradient_directed_byzantine_plan(net, counts, 2.0, x);
  validate_plan(plan, net);
  EXPECT_EQ(plan.neuron_counts(2), counts);
  for (const auto& fault : plan.neurons) {
    EXPECT_EQ(fault.kind, NeuronFaultKind::kByzantine);
    EXPECT_DOUBLE_EQ(std::fabs(fault.value), 2.0);
  }
}

TEST(Adversary, GradientDirectedBeatsRandomByzantine) {
  const auto net = small_net(17);
  Injector injector(net);
  const std::vector<double> x{0.4, 0.6};
  std::vector<std::vector<double>> probe{x};
  const std::vector<std::size_t> counts{1, 1};
  const double capacity = 1.0;
  const auto directed =
      gradient_directed_byzantine_plan(net, counts, capacity, x);
  const double directed_error =
      injector.worst_output_error(directed, {probe.data(), 1});
  Rng rng(19);
  double random_total = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto plan = random_byzantine_plan(net, counts, capacity, rng);
    random_total += injector.worst_output_error(plan, {probe.data(), 1});
  }
  EXPECT_GT(directed_error, random_total / trials);
}

TEST(Adversary, CombinationCountsAndSaturation) {
  EXPECT_EQ(combination_count(5, 2), 10u);
  EXPECT_EQ(combination_count(10, 0), 1u);
  EXPECT_EQ(combination_count(10, 10), 1u);
  EXPECT_EQ(combination_count(52, 5), 2598960u);
  // The paper's "discouraging combinatorial explosion".
  EXPECT_EQ(combination_count(1000, 500),
            std::numeric_limits<std::size_t>::max());
}

TEST(Adversary, ExhaustiveSearchFindsPlantedWorstPair) {
  // Make neurons 1 and 3 of the top layer the only influential ones; the
  // exhaustive search over pairs must find exactly that pair.
  auto net = small_net();
  for (double& w : net.output_weights()) w = 1e-4;
  net.output_weights()[1] = 2.0;
  net.output_weights()[3] = 1.5;
  Rng rng(23);
  std::vector<std::vector<double>> probes;
  for (int n = 0; n < 8; ++n) probes.push_back({rng.uniform(), rng.uniform()});
  double worst = 0.0;
  const auto plan = exhaustive_worst_crash_plan(net, 2, 2,
                                                {probes.data(), probes.size()},
                                                worst);
  ASSERT_EQ(plan.neurons.size(), 2u);
  std::set<std::size_t> victims{plan.neurons[0].neuron,
                                plan.neurons[1].neuron};
  EXPECT_TRUE(victims.count(1));
  EXPECT_TRUE(victims.count(3));
  EXPECT_GT(worst, 0.0);
}

TEST(Adversary, GreedyMatchesExhaustiveOnEasyInstance) {
  auto net = small_net(29);
  Rng rng(31);
  std::vector<std::vector<double>> probes;
  for (int n = 0; n < 8; ++n) probes.push_back({rng.uniform(), rng.uniform()});
  double exhaustive_error = 0.0;
  exhaustive_worst_crash_plan(net, 2, 1, {probes.data(), probes.size()},
                              exhaustive_error);
  Injector injector(net);
  const std::vector<std::size_t> counts{0, 1};
  const auto greedy = greedy_worst_crash_plan(net, counts,
                                              {probes.data(), probes.size()});
  const double greedy_error =
      injector.worst_output_error(greedy, {probes.data(), probes.size()});
  EXPECT_NEAR(greedy_error, exhaustive_error, 1e-12);
}

TEST(Campaign, ObservedMaxNeverExceedsBound) {
  const auto net = small_net(37);
  CampaignConfig config;
  config.attack = AttackKind::kRandomCrash;
  config.trials = 40;
  config.probes_per_trial = 8;
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const std::vector<std::size_t> counts{1, 2};
  const auto result = run_campaign(net, counts, config, options);
  EXPECT_GT(result.fep_bound, 0.0);
  EXPECT_LE(result.observed_max, result.fep_bound + 1e-9);
  EXPECT_EQ(result.per_trial_worst.count, 40u);
  EXPECT_LE(result.tightness(), 1.0 + 1e-9);
}

TEST(Campaign, DeterministicUnderSeed) {
  const auto net = small_net(41);
  CampaignConfig config;
  config.trials = 10;
  config.seed = 99;
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const std::vector<std::size_t> counts{2, 1};
  const auto a = run_campaign(net, counts, config, options);
  const auto b = run_campaign(net, counts, config, options);
  EXPECT_DOUBLE_EQ(a.observed_max, b.observed_max);
  EXPECT_DOUBLE_EQ(a.per_trial_worst.mean, b.per_trial_worst.mean);
}

TEST(Campaign, TightnessIsNaNWhenBoundIsNotPositive) {
  // A zero bound means "not computed / not comparable", which must be
  // distinguishable from a genuinely slack campaign: tightness() reports
  // NaN instead of silently returning 0.0.
  CampaignResult result;
  result.observed_max = 0.25;
  result.fep_bound = 0.0;
  EXPECT_TRUE(std::isnan(result.tightness()));
  result.fep_bound = -1.0;
  EXPECT_TRUE(std::isnan(result.tightness()));
  result.fep_bound = 0.5;
  EXPECT_DOUBLE_EQ(result.tightness(), 0.5);
}

TEST(Campaign, SynapseAttackUsesSynapseBound) {
  const auto net = small_net(43);
  CampaignConfig config;
  config.attack = AttackKind::kRandomSynapseByzantine;
  config.trials = 20;
  config.capacity = 1.0;
  theory::FepOptions options;
  options.capacity = 1.0;
  const std::vector<std::size_t> counts{1, 1, 1};  // size L+1
  const auto result = run_campaign(net, counts, config, options);
  EXPECT_GT(result.fep_bound, 0.0);
  EXPECT_LE(result.observed_max, result.fep_bound + 1e-9);
}

}  // namespace
}  // namespace wnf::fault
