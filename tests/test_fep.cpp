// Fep unit tests: the Theorem 2 formula against hand-expanded values, the
// capacity conventions, Theorem 5, Theorem 4 / Lemma 2, conv-aware caps.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fep.hpp"
#include "nn/builder.hpp"

namespace wnf::theory {
namespace {

/// A profile with chosen parameters (no actual network needed: Fep is pure
/// topology, which is the paper's point).
NetworkProfile make_profile(std::vector<std::size_t> widths,
                            std::vector<double> wmax, double k,
                            std::size_t input_dim = 2) {
  NetworkProfile p;
  p.input_dim = input_dim;
  p.depth = widths.size();
  p.widths = std::move(widths);
  p.weight_max = std::move(wmax);
  p.fan_in.clear();
  std::size_t prev = input_dim;
  for (std::size_t w : p.widths) {
    p.fan_in.emplace_back(w, prev);  // per-neuron fan-in, dense shape
    prev = w;
  }
  p.lipschitz = k;
  p.activation_sup = 1.0;
  return p;
}

TEST(Fep, SingleLayerCrashEqualsTheorem1Numerator) {
  // L = 1, crash: Fep(f) = f * w^(2)_m — the quantity Theorem 1 compares
  // against epsilon - epsilon'.
  const auto p = make_profile({10}, {0.5, 0.3}, 2.0);
  FepOptions options;
  options.mode = FailureMode::kCrash;
  const std::vector<std::size_t> faults{4};
  EXPECT_NEAR(forward_error_propagation(p, faults, options), 4 * 0.3, 1e-12);
}

TEST(Fep, TwoLayerHandExpansion) {
  // L=2, N=(3,4), w=(w1,w2,w3), K: Fep = C [ f1 K (4-f2) w2 w3 + f2 w3 ].
  const double w2 = 0.7;
  const double w3 = 0.2;
  const double k = 1.5;
  const double c = 2.0;
  const auto p = make_profile({3, 4}, {0.9, w2, w3}, k);
  FepOptions options;
  options.mode = FailureMode::kByzantine;
  options.capacity = c;
  const std::vector<std::size_t> faults{2, 1};
  const double expected = c * (2 * k * (4 - 1) * w2 * w3 + 1 * w3);
  EXPECT_NEAR(forward_error_propagation(p, faults, options), expected, 1e-12);
}

TEST(Fep, ThreeLayerDepthExponent) {
  // With faults only at layer 1 of an L=3 net, the K exponent is L-1 = 2.
  const auto p = make_profile({2, 5, 6}, {1.0, 0.5, 0.25, 0.125}, 3.0);
  FepOptions options;
  options.capacity = 1.0;
  const std::vector<std::size_t> faults{1, 0, 0};
  const double expected = 1.0 * 3.0 * 3.0 * (5 * 0.5) * (6 * 0.25) * 0.125;
  EXPECT_NEAR(forward_error_propagation(p, faults, options), expected, 1e-12);
}

TEST(Fep, ZeroFaultsZeroFep) {
  const auto p = make_profile({4, 4}, {1.0, 1.0, 1.0}, 1.0);
  const std::vector<std::size_t> faults{0, 0};
  EXPECT_EQ(forward_error_propagation(p, faults, FepOptions{}), 0.0);
}

TEST(Fep, MonotoneInOwnLayerFaults) {
  const auto p = make_profile({8, 8}, {0.5, 0.5, 0.5}, 1.0);
  FepOptions options;
  double prev = 0.0;
  for (std::size_t f = 0; f <= 8; ++f) {
    const std::vector<std::size_t> faults{f, 0};
    const double fep = forward_error_propagation(p, faults, options);
    EXPECT_GE(fep, prev);
    prev = fep;
  }
}

TEST(Fep, DeeperFaultsCostLessWhenKLarge) {
  // K > 1 amplifies shallow faults by K^(L-l): one fault at layer 1 must
  // out-cost one fault at layer 3 when relays exceed unity.
  const auto p = make_profile({4, 4, 4}, {0.5, 0.5, 0.5, 0.5}, 2.0);
  FepOptions options;
  const std::vector<std::size_t> shallow{1, 0, 0};
  const std::vector<std::size_t> deep{0, 0, 1};
  EXPECT_GT(forward_error_propagation(p, shallow, options),
            forward_error_propagation(p, deep, options));
}

TEST(Fep, SmallKFlipsTheDepthOrdering) {
  // With K small the relays attenuate: shallow faults become cheaper.
  const auto p = make_profile({4, 4, 4}, {0.5, 0.5, 0.5, 0.5}, 0.1);
  FepOptions options;
  const std::vector<std::size_t> shallow{1, 0, 0};
  const std::vector<std::size_t> deep{0, 0, 1};
  EXPECT_LT(forward_error_propagation(p, shallow, options),
            forward_error_propagation(p, deep, options));
}

TEST(Fep, RelayReductionCoupling) {
  // Faults at layer 2 *reduce* the relay factor (N_2 - f_2) applied to
  // layer-1 faults: Fep(f1=1, f2=1) < Fep(f1=1, 0) + Fep(0, f2=1).
  const auto p = make_profile({4, 4}, {0.5, 0.5, 0.5}, 1.0);
  FepOptions options;
  const std::vector<std::size_t> both{1, 1};
  const std::vector<std::size_t> first{1, 0};
  const std::vector<std::size_t> second{0, 1};
  EXPECT_LT(forward_error_propagation(p, both, options),
            forward_error_propagation(p, first, options) +
                forward_error_propagation(p, second, options));
}

TEST(Fep, EffectiveCapacityPerConvention) {
  const auto p = make_profile({4}, {1.0, 1.0}, 1.0);
  FepOptions options;
  options.mode = FailureMode::kCrash;
  EXPECT_DOUBLE_EQ(effective_capacity(p, options), 1.0);  // sup phi
  options.mode = FailureMode::kByzantine;
  options.capacity = 3.0;
  options.convention = CapacityConvention::kPerturbationBound;
  EXPECT_DOUBLE_EQ(effective_capacity(p, options), 3.0);
  options.convention = CapacityConvention::kTransmittedValueBound;
  EXPECT_DOUBLE_EQ(effective_capacity(p, options), 4.0);  // C + sup phi
}

TEST(Fep, CapacityScalesLinearly) {
  const auto p = make_profile({4, 4}, {0.5, 0.5, 0.5}, 1.0);
  FepOptions options;
  const std::vector<std::size_t> faults{1, 2};
  options.capacity = 1.0;
  const double base = forward_error_propagation(p, faults, options);
  options.capacity = 5.0;
  EXPECT_NEAR(forward_error_propagation(p, faults, options), 5.0 * base,
              1e-12);
}

TEST(Fep, LayerContributionsSumToTotal) {
  const auto p = make_profile({5, 6, 7}, {0.3, 0.4, 0.5, 0.6}, 1.2);
  FepOptions options;
  const std::vector<std::size_t> faults{2, 3, 1};
  double sum = 0.0;
  for (std::size_t l = 1; l <= 3; ++l) {
    sum += fep_layer_contribution(p, l, faults, options);
  }
  EXPECT_NEAR(sum, forward_error_propagation(p, faults, options), 1e-12);
}

TEST(Fep, ProfileExtractsNetworkStructure) {
  Rng rng(5);
  auto net = nn::NetworkBuilder(3)
                 .activation(nn::ActivationKind::kSigmoid, 2.0)
                 .hidden(6)
                 .hidden(4)
                 .build(rng);
  const auto p = profile_of(net, FepOptions{});
  EXPECT_EQ(p.depth, 2u);
  EXPECT_EQ(p.input_dim, 3u);
  EXPECT_EQ(p.widths, (std::vector<std::size_t>{6, 4}));
  EXPECT_DOUBLE_EQ(p.lipschitz, 2.0);
  ASSERT_EQ(p.weight_max.size(), 3u);
  EXPECT_DOUBLE_EQ(
      p.weight_max[0],
      net.weight_max(1, nn::WeightMaxConvention::kIncludeBias));
  ASSERT_EQ(p.fan_in.size(), 2u);
  EXPECT_EQ(p.fan_in[0], std::vector<std::size_t>(6, 3));
  EXPECT_EQ(p.fan_in[1], std::vector<std::size_t>(4, 6));
  EXPECT_EQ(p.receptive(1), 3u);
  EXPECT_EQ(p.receptive(2), 6u);
  EXPECT_FALSE(p.layer_sparse(1));
  EXPECT_FALSE(p.layer_sparse(2));
}

TEST(Fep, ReceptiveFieldCapReducesBound) {
  // A conv-style layer 2 with R=2 caps the fan-in of the relays hearing
  // layer-1 errors, shrinking the dense bound (Section VI's remark).
  auto p = make_profile({6, 6}, {0.5, 0.5, 0.5}, 1.0);
  FepOptions dense;
  FepOptions conv;
  conv.use_receptive_field = true;
  p.set_uniform_fan_in(1, 2);  // R(1) = R(2) = 2
  p.set_uniform_fan_in(2, 2);
  const std::vector<std::size_t> faults{4, 0};
  const double dense_bound = forward_error_propagation(p, faults, dense);
  const double conv_bound = forward_error_propagation(p, faults, conv);
  EXPECT_LT(conv_bound, dense_bound);
  // f_1 = 4 carriers capped at R(2) = 2: exactly half the first-hop count.
  EXPECT_NEAR(conv_bound, dense_bound * 2.0 / 4.0, 1e-12);
}

TEST(Theorem5, SingleLayerBaseCase) {
  // L=1: bound = lambda_1 * N_1 * w^(2)_m.
  const auto p = make_profile({7}, {0.4, 0.3}, 2.0);
  const std::vector<double> lambda{0.01};
  EXPECT_NEAR(precision_error_bound(p, lambda, FepOptions{}),
              0.01 * 7 * 0.3, 1e-14);
}

TEST(Theorem5, TwoLayerHandExpansion) {
  // L=2: bound = K lambda_1 N1 w2 N2 w3 + lambda_2 N2 w3.
  const double k = 1.5;
  const auto p = make_profile({3, 4}, {0.9, 0.7, 0.2}, k);
  const std::vector<double> lambda{0.01, 0.02};
  const double expected =
      k * 0.01 * 3 * 0.7 * 4 * 0.2 + 0.02 * 4 * 0.2;
  EXPECT_NEAR(precision_error_bound(p, lambda, FepOptions{}), expected, 1e-14);
}

TEST(Theorem5, ZeroLambdasZeroBound) {
  const auto p = make_profile({3, 4}, {1.0, 1.0, 1.0}, 1.0);
  const std::vector<double> lambda{0.0, 0.0};
  EXPECT_EQ(precision_error_bound(p, lambda, FepOptions{}), 0.0);
}

TEST(Theorem4, OutputSynapseTerm) {
  // A Byzantine synapse into the output contributes C * w^(L+1)_m.
  const auto p = make_profile({4}, {0.5, 0.25}, 2.0);
  FepOptions options;
  options.capacity = 3.0;
  const std::vector<std::size_t> synapse_faults{0, 2};
  EXPECT_NEAR(synapse_error_bound(p, synapse_faults, options),
              3.0 * 2 * 0.25, 1e-12);
}

TEST(Theorem4, HiddenSynapseTermHandExpansion) {
  // One Byzantine synapse into layer 1 of an L=1 net:
  // C * K * w^(1)_m * (first-hop: 1 carrier * w^(2)_m).
  const auto p = make_profile({4}, {0.5, 0.25}, 2.0);
  FepOptions options;
  options.capacity = 1.0;
  const std::vector<std::size_t> synapse_faults{1, 0};
  EXPECT_NEAR(synapse_error_bound(p, synapse_faults, options),
              1.0 * 2.0 * 0.5 * 1.0 * 0.25, 1e-12);
}

TEST(Theorem4, KExponentMatchesPaperDisplay) {
  // f_1 synapses into layer 1 of an L=2 net: C f K^2 w1 (N2 w2... ) — the
  // paper's K^{L+1-l} with l=1, L=2 gives K^2.
  const double k = 3.0;
  const auto p = make_profile({2, 5}, {0.5, 0.4, 0.3}, k);
  FepOptions options;
  const std::vector<std::size_t> synapse_faults{1, 0, 0};
  // C * K * w1 * [hop into layer 2: 1 carrier * w2 * K] * [output: 5 relays
  // — wait: carriers at layer 2 are N_2 = 5 correct neurons] * w3.
  const double expected = 1.0 * k * 0.5 * (1 * 0.4) * k * (5 * 0.3);
  EXPECT_NEAR(synapse_error_bound(p, synapse_faults, options), expected,
              1e-12);
}

TEST(Lemma2, EquivalentNeuronError) {
  const auto p = make_profile({4, 4}, {0.5, 0.7, 0.2}, 2.0);
  FepOptions options;
  options.capacity = 3.0;
  EXPECT_DOUBLE_EQ(lemma2_equivalent_neuron_error(p, 1, options),
                   3.0 * 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(lemma2_equivalent_neuron_error(p, 2, options),
                   3.0 * 2.0 * 0.7);
}

}  // namespace
}  // namespace wnf::theory
