// End-to-end integration: the full workflow the paper implies —
// train a network on a target (learning phase), measure epsilon'
// (over-provisioned accuracy), certify a fault budget with Theorem 3,
// inject those faults, and confirm Definition 3's epsilon-approximation
// survives, across modalities (matrix, simulator, quantised).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/certificate.hpp"
#include "core/lipschitz.hpp"
#include "core/overprovision.hpp"
#include "data/dataset.hpp"
#include "dist/sim.hpp"
#include "fault/adversary.hpp"
#include "fault/injector.hpp"
#include "nn/builder.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/train.hpp"
#include "quant/quantized_network.hpp"

namespace wnf {
namespace {

struct Pipeline {
  nn::FeedForwardNetwork net;
  data::Dataset eval_grid;
  double epsilon_prime;
};

/// Trains a small network on the smooth-step target and measures its sup
/// error over a dense grid (the empirical epsilon').
Pipeline trained_pipeline() {
  Rng rng(2024);
  const auto target = data::make_smooth_step(2);
  const auto train_set = data::sample_uniform(target, 256, rng);
  auto net = nn::NetworkBuilder(2)
                 .activation(nn::ActivationKind::kSigmoid, 1.0)
                 .hidden(12)
                 .hidden(10)
                 .init(nn::InitKind::kScaledUniform, 1.0)
                 .build(rng);
  nn::TrainConfig config;
  config.epochs = 200;
  config.learning_rate = 0.02;
  config.target_mse = 1e-4;
  nn::train(net, train_set, config, rng);
  auto grid = data::sample_grid(target, 21);
  const double eps_prime = nn::sup_error(net, grid);
  return {std::move(net), std::move(grid), eps_prime};
}

const Pipeline& pipeline() {
  static const Pipeline p = trained_pipeline();
  return p;
}

TEST(Integration, TrainingReachesUsefulAccuracy) {
  EXPECT_LT(pipeline().epsilon_prime, 0.15)
      << "training failed; downstream expectations are meaningless";
}

/// Slack sized from the cheapest possible single fault, so the certificate
/// is guaranteed non-trivial regardless of where training left the weights
/// (this is how an operator would pick epsilon in practice: from the
/// network's own Fep sensitivities).
double adaptive_slack(const nn::FeedForwardNetwork& net,
                      const theory::FepOptions& options, double multiple) {
  const auto prof = theory::profile_of(net, options);
  double cheapest = std::numeric_limits<double>::infinity();
  for (std::size_t l = 1; l <= prof.depth; ++l) {
    std::vector<std::size_t> one(prof.depth, 0);
    one[l - 1] = 1;
    cheapest = std::min(
        cheapest, theory::forward_error_propagation(prof, one, options));
  }
  return cheapest * multiple;
}

TEST(Integration, CertifiedCrashDistributionPreservesEpsilon) {
  const auto& p = pipeline();
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const theory::ErrorBudget budget{
      p.epsilon_prime + adaptive_slack(p.net, options, 3.0),
      p.epsilon_prime};
  const auto cert = theory::certify(p.net, budget, options);
  ASSERT_GT(cert.greedy_total, 0u)
      << "trained network tolerates nothing; widen the budget";

  // Definition 3 quantifies over ALL victim subsets of the certified
  // shape; sample many random ones plus the key-neuron adversary.
  Rng rng(77);
  fault::Injector injector(p.net);
  auto check_plan = [&](const fault::FaultPlan& plan) {
    for (std::size_t n = 0; n < p.eval_grid.size(); n += 7) {
      const auto& x = p.eval_grid.inputs[n];
      const double damaged = injector.damaged(plan, x);
      EXPECT_LE(std::fabs(damaged - p.eval_grid.labels[n]),
                budget.epsilon + 1e-9);
    }
  };
  for (int trial = 0; trial < 10; ++trial) {
    check_plan(fault::random_crash_plan(p.net, cert.greedy_distribution, rng));
  }
  check_plan(fault::top_weight_crash_plan(p.net, cert.greedy_distribution));
}

TEST(Integration, SimulatorAgreesWithInjectorOnCertifiedFaults) {
  const auto& p = pipeline();
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const theory::ErrorBudget budget{
      p.epsilon_prime + adaptive_slack(p.net, options, 3.0),
      p.epsilon_prime};
  const auto cert = theory::certify(p.net, budget, options);
  Rng rng(88);
  const auto plan =
      fault::random_crash_plan(p.net, cert.greedy_distribution, rng);
  dist::NetworkSimulator sim(p.net, dist::SimConfig{});
  sim.apply_faults(plan);
  fault::Injector injector(p.net);
  for (std::size_t n = 0; n < p.eval_grid.size(); n += 13) {
    const auto& x = p.eval_grid.inputs[n];
    EXPECT_NEAR(sim.evaluate(x).output, injector.damaged(plan, x), 1e-10);
  }
}

TEST(Integration, ReplicationBuysCertifiedTolerance) {
  const auto& p = pipeline();
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const theory::ErrorBudget budget{
      p.epsilon_prime + adaptive_slack(p.net, options, 2.5),
      p.epsilon_prime};
  const auto base_cert = theory::certify(p.net, budget, options);
  ASSERT_GT(base_cert.greedy_total, 0u);
  const auto replicated = theory::replicate_neurons(p.net, 3);
  // epsilon' unchanged: the function is identical.
  EXPECT_NEAR(nn::sup_error(replicated, p.eval_grid), p.epsilon_prime, 1e-9);
  const auto repl_cert = theory::certify(replicated, budget, options);
  EXPECT_GT(repl_cert.greedy_total, base_cert.greedy_total);
}

TEST(Integration, QuantizedDeploymentKeepsCertifiedBudget) {
  const auto& p = pipeline();
  // Choose activation precisions whose Theorem-5 bound fits inside a
  // 0.05 deployment budget, then verify on the grid.
  theory::FepOptions options;
  quant::PrecisionScheme scheme;
  scheme.bits.assign(p.net.layer_count(), 20);
  while (true) {
    const double bound = quant::quantization_error_bound(p.net, scheme, options);
    if (bound <= 0.05) break;
    for (auto& bits : scheme.bits) ++bits;
    ASSERT_LE(scheme.bits[0], 48u);
  }
  nn::Workspace ws;
  for (std::size_t n = 0; n < p.eval_grid.size(); n += 7) {
    const auto& x = p.eval_grid.inputs[n];
    const double exact = p.net.evaluate(x, ws);
    const double quantized = quant::evaluate_quantized(p.net, x, scheme, ws);
    EXPECT_LE(std::fabs(exact - quantized), 0.05);
  }
}

TEST(Integration, SerializedModelCarriesTheSameCertificate) {
  const auto& p = pipeline();
  const std::string path = testing::TempDir() + "/wnf_integration_net.txt";
  ASSERT_TRUE(nn::save_network_file(p.net, path));
  const auto loaded = nn::load_network_file(path);
  ASSERT_TRUE(loaded.has_value());
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const theory::ErrorBudget budget{p.epsilon_prime + 0.2, p.epsilon_prime};
  const auto original = theory::certify(p.net, budget, options);
  const auto roundtrip = theory::certify(*loaded, budget, options);
  EXPECT_EQ(original.greedy_distribution, roundtrip.greedy_distribution);
  EXPECT_EQ(original.uniform_max, roundtrip.uniform_max);
}

TEST(Integration, EmpiricalNetworkLipschitzRespectsProductBound) {
  const auto& p = pipeline();
  theory::FepOptions options;
  const auto prof = theory::profile_of(p.net, options);
  const double bound = theory::network_lipschitz_bound(prof);
  Rng rng(99);
  const double empirical =
      theory::empirical_network_lipschitz(p.net, 2000, rng);
  EXPECT_LE(empirical, bound);
  EXPECT_GT(empirical, 0.0);
}

TEST(Integration, FepRegularizedTrainingImprovesCertifiedTolerance) {
  // Section VI's research direction, executed: training with the Fep
  // surrogate buys a larger certified fault budget at equal epochs.
  Rng rng_a(31415);
  Rng rng_b(31415);
  const auto target = data::make_mean(2);
  Rng data_rng(27);
  const auto train_set = data::sample_uniform(target, 256, data_rng);
  auto plain = nn::NetworkBuilder(2).hidden(16).build(rng_a);
  auto robust = nn::NetworkBuilder(2).hidden(16).build(rng_b);
  nn::TrainConfig config;
  config.epochs = 120;
  config.learning_rate = 0.02;
  Rng t_a(1);
  Rng t_b(1);
  nn::train(plain, train_set, config, t_a);
  config.fep_lambda = 0.05;
  nn::train(robust, train_set, config, t_b);

  const auto grid = data::sample_grid(target, 21);
  const double eps_plain = nn::sup_error(plain, grid);
  const double eps_robust = nn::sup_error(robust, grid);
  // Both must still fit the target usefully.
  ASSERT_LT(eps_plain, 0.2);
  ASSERT_LT(eps_robust, 0.2);

  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const double epsilon = 0.3;
  const auto cert_plain =
      theory::certify(plain, {epsilon, std::max(eps_plain, 1e-9)}, options);
  const auto cert_robust =
      theory::certify(robust, {epsilon, std::max(eps_robust, 1e-9)}, options);
  EXPECT_GE(cert_robust.greedy_total, cert_plain.greedy_total);
}

}  // namespace
}  // namespace wnf
