// Load-subsystem tests: arrival-trace generation (determinism, statistics,
// serialization), wall-clock fault windows resolving onto request ids, and
// the open-loop replayer — shedding policy against scripted pipelines,
// tenant routing, and bit-identity of a replay against a synchronous drain
// of the same admitted traffic (in-process pools and a time-shared
// transport fleet).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "fault/injector.hpp"
#include "load/replay.hpp"
#include "load/trace.hpp"
#include "nn/builder.hpp"
#include "serve/pool.hpp"
#include "serve/timeline.hpp"
#include "transport/host.hpp"
#include "transport/worker.hpp"

namespace wnf::load {
namespace {

nn::FeedForwardNetwork load_net(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(3)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(7)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.5)
      .build(rng);
}

std::vector<std::vector<double>> load_workload(std::size_t count,
                                               std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::vector<double>> workload(count);
  for (auto& x : workload) {
    x = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return workload;
}

dist::LatencyModel heavy_tail() {
  return {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
}

void expect_ascending(const ArrivalTrace& trace) {
  for (std::size_t i = 1; i < trace.arrivals.size(); ++i) {
    EXPECT_LE(trace.arrivals[i - 1].time, trace.arrivals[i].time) << i;
  }
  for (const Arrival& arrival : trace.arrivals) {
    EXPECT_GE(arrival.time, 0.0);
    EXPECT_LT(arrival.time, trace.duration);
  }
}

/// A serving deployment scripted for shedding tests: accepts up to
/// `capacity` outstanding requests and completes one per poll. Results are
/// synthetic — the shedding policy only looks at counts and outstanding().
class StubPipeline final : public Pipeline {
 public:
  explicit StubPipeline(std::size_t capacity = ~std::size_t{0})
      : capacity_(capacity) {}
  bool try_submit(std::vector<double>) override {
    if (held_ >= capacity_) return false;
    ++held_;
    return true;
  }
  bool poll(serve::RequestResult& out) override {
    if (held_ == 0) return false;
    --held_;
    out = {next_id_++, 0.0, 0.0, 0};
    return true;
  }
  std::size_t outstanding() const override { return held_; }
  serve::ServeReport report() const override { return {}; }

 private:
  std::size_t capacity_;
  std::size_t held_ = 0;
  std::uint64_t next_id_ = 0;
};

#define SKIP_WITHOUT_TRANSPORT()                                   \
  if (!transport::transport_available()) {                         \
    GTEST_SKIP() << "no POSIX fork/socketpair on this platform";   \
  }

// ----------------------------------------------------------------- traces

TEST(Trace, PoissonIsDeterministicAscendingAndNearItsRate) {
  Rng rng_a(42);
  Rng rng_b(42);
  const auto a = poisson_trace(200.0, 2.0, rng_a);
  const auto b = poisson_trace(200.0, 2.0, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time);
    EXPECT_EQ(a.arrivals[i].tenant, 0u);
  }
  expect_ascending(a);
  // 400 expected arrivals, sd = 20: a +/-50 % band is a ~10-sigma test.
  EXPECT_GT(a.size(), 200u);
  EXPECT_LT(a.size(), 600u);
  EXPECT_NEAR(a.offered_rate(), 200.0, 100.0);
  // arrival_times() is the resolve_wall feed: same values, same order.
  const auto times = a.arrival_times();
  ASSERT_EQ(times.size(), a.size());
  EXPECT_EQ(times.front(), a.arrivals.front().time);
  EXPECT_EQ(times.back(), a.arrivals.back().time);
}

TEST(Trace, DiurnalIsDeterministicAndBoundedByItsEnvelope) {
  Rng rng_a(7);
  Rng rng_b(7);
  const auto a = diurnal_trace(50.0, 400.0, 1.0, 2.0, rng_a, 3);
  const auto b = diurnal_trace(50.0, 400.0, 1.0, 2.0, rng_b, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].time, b.arrivals[i].time);
    EXPECT_EQ(a.arrivals[i].tenant, 3u);
  }
  expect_ascending(a);
  // Mean rate of the cosine curve is (base + peak) / 2 = 225/s over 2 s;
  // the count must land inside the [base, peak] envelope with margin.
  EXPECT_GT(a.size(), 50u * 2u);
  EXPECT_LT(a.size(), 400u * 2u);
  // The curve troughs at t = 0 and peaks mid-period: the first half of
  // period one must out-arrive its opening tenth by a wide margin.
  std::size_t opening = 0;
  std::size_t mid = 0;
  for (const Arrival& arrival : a.arrivals) {
    if (arrival.time < 0.1) ++opening;
    if (arrival.time >= 0.4 && arrival.time < 0.6) ++mid;
  }
  EXPECT_GT(mid, opening);
}

TEST(Trace, MergeOrdersByTimeAndScaleCompressesTheSchedule) {
  ArrivalTrace first;
  first.arrivals = {{0.1, 0}, {0.4, 0}, {0.9, 0}};
  first.duration = 1.0;
  ArrivalTrace second;
  second.arrivals = {{0.2, 1}, {0.4, 1}, {0.5, 1}};
  second.duration = 0.8;

  const ArrivalTrace traces[] = {first, second};
  const auto merged = merge_traces(traces);
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_EQ(merged.duration, 1.0);
  expect_ascending(merged);
  // Stable on the 0.4 tie: the earlier input trace wins.
  EXPECT_EQ(merged.arrivals[2].time, 0.4);
  EXPECT_EQ(merged.arrivals[2].tenant, 0u);
  EXPECT_EQ(merged.arrivals[3].tenant, 1u);

  const auto doubled = scale_rate(merged, 2.0);
  EXPECT_EQ(doubled.duration, 0.5);
  ASSERT_EQ(doubled.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_DOUBLE_EQ(doubled.arrivals[i].time, merged.arrivals[i].time / 2.0);
    EXPECT_EQ(doubled.arrivals[i].tenant, merged.arrivals[i].tenant);
  }
  EXPECT_DOUBLE_EQ(doubled.offered_rate(), merged.offered_rate() * 2.0);
}

TEST(Trace, SaveLoadRoundTripsExactlyAndRejectsMalformedInput) {
  Rng rng(11);
  auto trace = poisson_trace(50.0, 1.0, rng, 2);
  ASSERT_FALSE(trace.empty());

  std::stringstream stream;
  save_trace(trace, stream);
  const auto loaded = load_trace(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->duration, trace.duration);
  ASSERT_EQ(loaded->size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    // 17 significant digits round-trip every double bit-exactly.
    EXPECT_EQ(loaded->arrivals[i].time, trace.arrivals[i].time) << i;
    EXPECT_EQ(loaded->arrivals[i].tenant, trace.arrivals[i].tenant);
  }

  std::istringstream bad_header("# not-a-trace\nduration 1\n");
  EXPECT_FALSE(load_trace(bad_header).has_value());
  std::istringstream descending(
      "# wnf-arrival-trace v1\nduration 1\n0.5 0\n0.2 0\n");
  EXPECT_FALSE(load_trace(descending).has_value());
  std::istringstream past_end(
      "# wnf-arrival-trace v1\nduration 1\n1.5 0\n");
  EXPECT_FALSE(load_trace(past_end).has_value());
  std::istringstream no_duration("# wnf-arrival-trace v1\n0.5 0\n");
  EXPECT_FALSE(load_trace(no_duration).has_value());
}

// ------------------------------------------------ wall-clock fault windows

TEST(WallClock, WindowsResolveOntoRequestIdsByArrivalTime) {
  const auto net = load_net();
  const std::vector<double> arrivals{0.1, 0.2, 0.3, 0.5, 0.8, 1.0, 1.5, 2.0};

  fault::FaultPlan plan;
  plan.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};

  // A failure episode over wall [0.25 s, 0.9 s) covers exactly the
  // arrivals scheduled inside it: ids 2, 3, 4.
  serve::FaultTimeline wall;
  wall.add_wall(0.25, 0.9, plan);
  EXPECT_TRUE(wall.has_wall_windows());
  EXPECT_FALSE(wall.empty());
  wall.resolve_wall(arrivals);
  EXPECT_FALSE(wall.has_wall_windows());
  wall.finalize(net);

  serve::FaultTimeline reference;
  reference.add(2, 5, plan);
  reference.finalize(net);
  for (std::uint64_t id = 0; id < arrivals.size(); ++id) {
    EXPECT_EQ(wall.active_at(id).neurons.size(),
              reference.active_at(id).neurons.size())
        << "id " << id;
  }
  EXPECT_TRUE(wall.active_at(1).empty());
  EXPECT_FALSE(wall.active_at(2).empty());
  EXPECT_FALSE(wall.active_at(4).empty());
  EXPECT_TRUE(wall.active_at(5).empty());

  // A window that straddles no arrival dissolves instead of creating an
  // empty id range.
  serve::FaultTimeline hollow;
  hollow.add_wall(0.35, 0.45, plan);
  hollow.resolve_wall(arrivals);
  EXPECT_TRUE(hollow.empty());
  hollow.finalize(net);
  for (std::uint64_t id = 0; id < arrivals.size(); ++id) {
    EXPECT_TRUE(hollow.active_at(id).empty());
  }
}

TEST(WallClockDeathTest, FinalizingUnresolvedWallWindowsAborts) {
  // A wall-clock window that never met an arrival trace is a scenario
  // authoring bug: finalize must refuse, not silently drop the fault.
  const auto net = load_net();
  fault::FaultPlan plan;
  plan.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  serve::FaultTimeline timeline;
  timeline.add_wall(0.1, 0.2, plan);
  EXPECT_DEATH(timeline.finalize(net), "precondition");
}

// ----------------------------------------------------------------- replay

TEST(Replay, OpenLoopBitIdenticalToSynchronousDrain) {
  // The acceptance bar at pool scale: an open-loop replay with no shedding
  // delivers the exact bytes a synchronous submit-everything-then-drain of
  // the same inputs produces — wall-clock scheduling changes when work is
  // dispatched, never what any request computes.
  const auto net = load_net(13);
  Rng trace_rng(5);
  const auto trace = poisson_trace(4000.0, 0.02, trace_rng);  // ~80 arrivals
  ASSERT_FALSE(trace.empty());
  const auto inputs = load_workload(trace.size(), 21);

  serve::ServeConfig config;
  config.replicas = 2;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 99;

  serve::ReplicaPool pool(net, config);
  PoolPipeline pipe(pool);
  Pipeline* const pipes[] = {&pipe};
  OpenLoopConfig open_loop;
  open_loop.time_scale = 0.1;  // ~2 ms of schedule
  std::vector<std::vector<serve::RequestResult>> collected;
  const auto report = replay(trace, inputs, pipes, open_loop, &collected);

  EXPECT_EQ(report.offered, trace.size());
  EXPECT_EQ(report.admitted, trace.size());
  EXPECT_EQ(report.completed, trace.size());
  EXPECT_EQ(report.shed_slo + report.shed_admission + report.shed_queue, 0u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.offered_rps, 0.0);
  EXPECT_GT(report.completed_rps, 0.0);
  EXPECT_LE(report.p50, report.p95);
  EXPECT_LE(report.p95, report.p99);
  EXPECT_LE(report.p99, report.p999);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].offered, trace.size());
  EXPECT_EQ(report.tenants[0].completed, trace.size());

  serve::ReplicaPool reference(net, config);
  ASSERT_EQ(reference.submit_batch(inputs), inputs.size());
  const auto expected = reference.drain();
  ASSERT_EQ(collected.size(), 1u);
  ASSERT_EQ(collected[0].size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(collected[0][i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(collected[0][i].output, expected[i].output) << i;
    EXPECT_DOUBLE_EQ(collected[0][i].completion_time,
                     expected[i].completion_time);
    EXPECT_EQ(collected[0][i].resets_sent, expected[i].resets_sent);
  }
}

TEST(Replay, AdmissionLimitShedsWhenThePipelineBacksUp) {
  // Ten arrivals all scheduled at wall zero against a pipeline nothing has
  // polled yet: the first `admission_limit` are admitted, the rest shed —
  // deterministically, because the replayer only harvests while *waiting*
  // for a future arrival, and none of these are in the future.
  ArrivalTrace trace;
  for (int i = 0; i < 10; ++i) trace.arrivals.push_back({0.0, 0});
  trace.duration = 1e-6;
  const auto inputs = load_workload(1);

  StubPipeline stub;
  Pipeline* const pipes[] = {&stub};
  OpenLoopConfig config;
  config.admission_limit = 4;
  const auto report = replay(trace, inputs, pipes, config);

  EXPECT_EQ(report.offered, 10u);
  EXPECT_EQ(report.admitted, 4u);
  EXPECT_EQ(report.shed_admission, 6u);
  EXPECT_EQ(report.shed_queue, 0u);
  EXPECT_EQ(report.shed_slo, 0u);
  EXPECT_EQ(report.completed, 4u);
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].admitted, 4u);
  EXPECT_EQ(report.tenants[0].shed, 6u);
}

TEST(Replay, QueueRefusalAndSloLatenessShedSeparately) {
  ArrivalTrace trace;
  for (int i = 0; i < 6; ++i) trace.arrivals.push_back({0.0, 0});
  trace.duration = 1e-6;
  const auto inputs = load_workload(1);

  // A deployment whose bounded queue holds two: the overflow is charged to
  // shed_queue, not to the replayer's own admission control.
  StubPipeline tight(2);
  Pipeline* const tight_pipes[] = {&tight};
  const auto queue_report = replay(trace, inputs, tight_pipes, {});
  EXPECT_EQ(queue_report.admitted, 2u);
  EXPECT_EQ(queue_report.shed_queue, 4u);
  EXPECT_EQ(queue_report.shed_admission, 0u);
  EXPECT_EQ(queue_report.completed, 2u);

  // An SLO tighter than the clock can even measure: every arrival is
  // already past its deadline when the driver reaches it, so everything
  // sheds before touching the pipeline.
  StubPipeline idle;
  Pipeline* const idle_pipes[] = {&idle};
  OpenLoopConfig slo;
  slo.slo_seconds = 1e-12;
  const auto slo_report = replay(trace, inputs, idle_pipes, slo);
  EXPECT_EQ(slo_report.shed_slo, 6u);
  EXPECT_EQ(slo_report.admitted, 0u);
  EXPECT_EQ(slo_report.completed, 0u);
  EXPECT_EQ(idle.outstanding(), 0u);
}

TEST(Replay, OneDriverSaturatesTwoPoolsWithTenantRouting) {
  // Two deployments, one driver thread: tenants route to pipelines by
  // tenant index, per-tenant stats split the traffic, and each pipeline's
  // delivered stream is bit-identical to a dedicated synchronous drain of
  // the inputs that tenant was offered.
  const auto net_a = load_net(13);
  const auto net_b = load_net(17);
  ArrivalTrace trace;
  for (int i = 0; i < 24; ++i) {
    trace.arrivals.push_back(
        {static_cast<double>(i) * 1e-4, static_cast<std::uint32_t>(i % 2)});
  }
  trace.duration = 24e-4;
  const auto inputs = load_workload(trace.size(), 33);

  serve::ServeConfig config;
  config.replicas = 2;
  config.latency = heavy_tail();
  config.seed = 7;
  serve::ReplicaPool pool_a(net_a, config);
  serve::ReplicaPool pool_b(net_b, config);
  PoolPipeline pipe_a(pool_a);
  PoolPipeline pipe_b(pool_b);
  Pipeline* const pipes[] = {&pipe_a, &pipe_b};
  std::vector<std::vector<serve::RequestResult>> collected;
  const auto report = replay(trace, inputs, pipes, {}, &collected);

  EXPECT_EQ(report.admitted, 24u);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].offered, 12u);
  EXPECT_EQ(report.tenants[1].offered, 12u);
  EXPECT_EQ(report.tenants[0].completed, 12u);
  EXPECT_EQ(report.tenants[1].completed, 12u);

  // Tenant t was offered the inputs at global indices t, t+2, t+4, ...
  for (std::size_t t = 0; t < 2; ++t) {
    std::vector<std::vector<double>> offered;
    for (std::size_t i = t; i < trace.size(); i += 2) {
      offered.push_back(inputs[i]);
    }
    serve::ReplicaPool reference(t == 0 ? net_a : net_b, config);
    ASSERT_EQ(reference.submit_batch(offered), offered.size());
    const auto expected = reference.drain();
    ASSERT_EQ(collected[t].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(collected[t][i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(collected[t][i].output, expected[i].output)
          << "tenant " << t << " request " << i;
      EXPECT_DOUBLE_EQ(collected[t][i].completion_time,
                       expected[i].completion_time);
    }
  }
}

TEST(Replay, TimeSharedFleetMatchesDedicatedHostsBitForBit) {
  SKIP_WITHOUT_TRANSPORT();
  // Many networks, ONE persistent fleet: tenants replay back to back with
  // a rebind between slices, and every tenant's results are bit-identical
  // to a dedicated freshly forked host serving the same inputs — the
  // fork-once fleet is invisible in the bytes.
  const auto net_a = load_net(13);
  const auto net_b = load_net(17);
  const nn::FeedForwardNetwork* const nets[] = {&net_a, &net_b};

  Rng rng_a(5);
  Rng rng_b(6);
  auto trace_a = poisson_trace(2000.0, 0.01, rng_a, 0);
  auto trace_b = poisson_trace(2000.0, 0.01, rng_b, 1);
  ASSERT_FALSE(trace_a.empty());
  ASSERT_FALSE(trace_b.empty());
  const ArrivalTrace parts[] = {trace_a, trace_b};
  const auto trace = merge_traces(parts);
  const std::size_t most = std::max(trace_a.size(), trace_b.size());
  const auto inputs = load_workload(most, 21);

  transport::TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 99;

  transport::WorkerHost fleet(config);  // unbound: binds on first rebind
  OpenLoopConfig open_loop;
  open_loop.time_scale = 0.1;
  std::vector<std::vector<serve::RequestResult>> collected;
  const auto reports = replay_time_shared(fleet, nets, trace, inputs,
                                          open_loop, &collected);

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].completed, trace_a.size());
  EXPECT_EQ(reports[1].completed, trace_b.size());
  EXPECT_EQ(fleet.rebinds(), 2u);
  // Fork-once: the fleet never respawned across both tenants.
  EXPECT_EQ(fleet.total_spawns(), config.workers);

  for (std::size_t t = 0; t < 2; ++t) {
    const std::size_t count = t == 0 ? trace_a.size() : trace_b.size();
    std::vector<std::vector<double>> offered;
    for (std::size_t i = 0; i < count; ++i) {
      offered.push_back(inputs[i % inputs.size()]);
    }
    transport::WorkerHost dedicated(*nets[t], config);
    ASSERT_EQ(dedicated.submit_batch(offered), offered.size());
    const auto expected = dedicated.drain();
    ASSERT_EQ(collected[t].size(), expected.size()) << "tenant " << t;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(collected[t][i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(collected[t][i].output, expected[i].output)
          << "tenant " << t << " request " << i;
      EXPECT_DOUBLE_EQ(collected[t][i].completion_time,
                       expected[i].completion_time);
      EXPECT_EQ(collected[t][i].resets_sent, expected[i].resets_sent);
    }
  }
}

}  // namespace
}  // namespace wnf::load
