// Tests for layers, the builder, and the paper's network model (Eqs. 1-3):
// manual forward computation, hooks, weight maxima, traces, conv layers.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/gradients.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"

namespace wnf::nn {
namespace {

/// 2-input, one hidden layer of 2, hand-checkable fixture.
FeedForwardNetwork tiny_network(double k = 1.0) {
  DenseLayer layer(2, 2);
  layer.weights() = Matrix{{1.0, -2.0}, {0.5, 0.25}};
  layer.bias()[0] = 0.1;
  layer.bias()[1] = -0.3;
  return FeedForwardNetwork(2, {layer}, {2.0, -1.0}, 0.05,
                            Activation(ActivationKind::kSigmoid, k));
}

TEST(DenseLayer, AffineMatchesManualComputation) {
  DenseLayer layer(2, 3);
  layer.weights() = Matrix{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  layer.bias()[0] = 0.5;
  layer.bias()[1] = -0.5;
  std::vector<double> in{1.0, 0.0, -1.0};
  std::vector<double> out(2);
  layer.affine(in, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0 - 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(out[1], 4.0 - 6.0 - 0.5);
}

TEST(DenseLayer, WeightMaxConventions) {
  DenseLayer layer(1, 2);
  layer.weights() = Matrix{{0.5, -0.75}};
  layer.bias()[0] = -2.0;
  EXPECT_DOUBLE_EQ(layer.weight_max(WeightMaxConvention::kExcludeBias), 0.75);
  EXPECT_DOUBLE_EQ(layer.weight_max(WeightMaxConvention::kIncludeBias), 2.0);
}

TEST(DenseLayer, ReceptiveFieldDefaultsToFanIn) {
  DenseLayer layer(4, 7);
  EXPECT_EQ(layer.receptive_field(), 7u);
  layer.set_receptive_field(3);
  EXPECT_EQ(layer.receptive_field(), 3u);
}

TEST(Network, EvaluateMatchesManualForward) {
  const auto net = tiny_network();
  const Activation phi(ActivationKind::kSigmoid, 1.0);
  const std::vector<double> x{0.3, 0.7};
  const double s0 = 1.0 * 0.3 - 2.0 * 0.7 + 0.1;
  const double s1 = 0.5 * 0.3 + 0.25 * 0.7 - 0.3;
  const double expected =
      2.0 * phi.value(s0) - 1.0 * phi.value(s1) + 0.05;
  EXPECT_NEAR(net.evaluate(x), expected, 1e-14);
}

TEST(Network, ForwardTraceRecordsEverything) {
  const auto net = tiny_network();
  const std::vector<double> x{0.3, 0.7};
  const auto trace = net.forward_trace(x);
  ASSERT_EQ(trace.activations.size(), 2u);   // y^(0), y^(1)
  ASSERT_EQ(trace.preactivations.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.activations[0][0], 0.3);
  EXPECT_NEAR(trace.preactivations[0][0], 1.0 * 0.3 - 2.0 * 0.7 + 0.1, 1e-14);
  EXPECT_NEAR(trace.output, net.evaluate(x), 1e-14);
}

TEST(Network, WorkspaceReuseGivesSameResult) {
  const auto net = tiny_network();
  Workspace ws;
  const std::vector<double> a{0.1, 0.2};
  const std::vector<double> b{0.9, 0.4};
  const double first = net.evaluate(a, ws);
  net.evaluate(b, ws);
  EXPECT_DOUBLE_EQ(net.evaluate(a, ws), first);
}

TEST(Network, WeightMaxPerLayerAndOutput) {
  const auto net = tiny_network();
  EXPECT_DOUBLE_EQ(net.weight_max(1, WeightMaxConvention::kExcludeBias), 2.0);
  EXPECT_DOUBLE_EQ(net.weight_max(2, WeightMaxConvention::kExcludeBias), 2.0);
  const auto maxima = net.weight_maxima(WeightMaxConvention::kExcludeBias);
  ASSERT_EQ(maxima.size(), 2u);
}

TEST(Network, CountsAndWidths) {
  Rng rng(3);
  const auto net = NetworkBuilder(4).hidden(8).hidden(6).build(rng);
  EXPECT_EQ(net.layer_count(), 2u);
  EXPECT_EQ(net.layer_width(1), 8u);
  EXPECT_EQ(net.layer_width(2), 6u);
  EXPECT_EQ(net.neuron_count(), 14u);
  EXPECT_EQ(net.layer_widths(), (std::vector<std::size_t>{8, 6}));
  // synapses: 8*4 + 8 biases + 6*8 + 6 biases + 6 output + 1 output bias.
  EXPECT_EQ(net.synapse_count(), 32u + 8u + 48u + 6u + 6u + 1u);
}

TEST(Network, PostActivationHookOverridesNeuron) {
  const auto net = tiny_network();
  const std::vector<double> x{0.3, 0.7};
  ForwardHooks hooks;
  hooks.post_activation = [](std::size_t l, std::span<double> y) {
    if (l == 1) y[0] = 0.0;  // crash neuron 0
  };
  Workspace ws;
  const double damaged = net.evaluate_hooked(x, hooks, ws);
  const Activation phi(ActivationKind::kSigmoid, 1.0);
  const double s1 = 0.5 * 0.3 + 0.25 * 0.7 - 0.3;
  EXPECT_NEAR(damaged, -1.0 * phi.value(s1) + 0.05, 1e-14);
}

TEST(Network, PreActivationHookSeesOutputNode) {
  const auto net = tiny_network();
  const std::vector<double> x{0.3, 0.7};
  std::vector<std::size_t> layers_seen;
  ForwardHooks hooks;
  hooks.pre_activation = [&](std::size_t l, std::span<const double>,
                             std::span<double> s) {
    layers_seen.push_back(l);
    if (l == 2) {
      ASSERT_EQ(s.size(), 1u);  // the single output node
      s[0] += 10.0;
    }
  };
  Workspace ws;
  const double out = net.evaluate_hooked(x, hooks, ws);
  EXPECT_EQ(layers_seen, (std::vector<std::size_t>{1, 2}));
  EXPECT_NEAR(out, net.evaluate(x) + 10.0, 1e-14);
}

TEST(Network, HookedWithoutHooksEqualsPlain) {
  Rng rng(17);
  const auto net = NetworkBuilder(3).hidden(5).hidden(4).build(rng);
  Workspace ws;
  const std::vector<double> x{0.2, 0.4, 0.9};
  EXPECT_DOUBLE_EQ(net.evaluate_hooked(x, ForwardHooks{}, ws),
                   net.evaluate(x, ws));
}

TEST(Network, SetActivationChangesOutput) {
  auto net = tiny_network(1.0);
  const std::vector<double> x{0.5, 0.5};
  const double before = net.evaluate(x);
  net.set_activation(net.activation().with_k(4.0));
  EXPECT_NE(net.evaluate(x), before);
  EXPECT_DOUBLE_EQ(net.activation().lipschitz(), 4.0);
}

TEST(Builder, ShapesAndDeterminism) {
  Rng rng_a(21);
  Rng rng_b(21);
  const auto make = [](Rng& rng) {
    return NetworkBuilder(2)
        .activation(ActivationKind::kTanh01, 0.5)
        .hidden_layers({4, 3})
        .init(InitKind::kUniform, 0.7)
        .build(rng);
  };
  const auto a = make(rng_a);
  const auto b = make(rng_b);
  EXPECT_TRUE(a.approx_equal(b, 0.0));
  EXPECT_EQ(a.activation().kind(), ActivationKind::kTanh01);
  EXPECT_LE(a.layer(1).weights().max_abs(), 0.7);
}

TEST(Builder, ScaledInitRespectsFanIn) {
  Rng rng(23);
  const auto net = NetworkBuilder(100)
                       .hidden(10)
                       .init(InitKind::kScaledUniform, 1.0)
                       .build(rng);
  EXPECT_LE(net.layer(1).weights().max_abs(), 1.0 / 10.0);  // 1/sqrt(100)
}

TEST(Builder, ConstantInit) {
  Rng rng(29);
  const auto net =
      NetworkBuilder(2).hidden(3).init(InitKind::kConstant, 0.5).build(rng);
  for (double w : net.layer(1).weights().flat()) EXPECT_DOUBLE_EQ(w, 0.5);
}

TEST(Conv1D, SpecShapes) {
  Conv1DSpec spec{10, 3, 1};
  EXPECT_EQ(spec.out_size(), 8u);
  Conv1DSpec strided{10, 4, 2};
  EXPECT_EQ(strided.out_size(), 4u);
}

TEST(Conv1D, DenseRealisationMatchesDirectConvolution) {
  Conv1DSpec spec{6, 3, 1};
  const std::vector<double> kernel{0.5, -1.0, 0.25};
  const auto layer = make_conv1d(spec, kernel, 0.1);
  EXPECT_EQ(layer.receptive_field(), 3u);
  std::vector<double> in{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> out(spec.out_size());
  layer.affine(in, out);
  for (std::size_t j = 0; j < spec.out_size(); ++j) {
    double expected = 0.1;
    for (std::size_t k = 0; k < 3; ++k) expected += kernel[k] * in[j + k];
    EXPECT_NEAR(out[j], expected, 1e-14);
  }
}

TEST(Conv1D, OutOfFieldWeightsAreZero) {
  Conv1DSpec spec{8, 2, 2};
  const auto layer = make_conv1d(spec, std::vector<double>{1.0, 1.0}, 0.0);
  for (std::size_t j = 0; j < spec.out_size(); ++j) {
    for (std::size_t i = 0; i < spec.in_size; ++i) {
      const bool in_field = i >= j * 2 && i < j * 2 + 2;
      if (!in_field) {
        EXPECT_EQ(layer.weights()(j, i), 0.0);
      }
    }
  }
}

TEST(Conv1D, KernelExtractionRoundTrip) {
  Conv1DSpec spec{9, 3, 2};
  const std::vector<double> kernel{0.3, -0.6, 0.9};
  const auto layer = make_conv1d(spec, kernel, -0.2);
  const auto extracted = extract_kernel(layer, spec);
  ASSERT_EQ(extracted.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_NEAR(extracted[k], kernel[k], 1e-14);
}

TEST(Conv1D, ProjectionRestoresSharing) {
  Conv1DSpec spec{6, 2, 1};
  auto layer = make_conv1d(spec, std::vector<double>{1.0, -1.0}, 0.0);
  // Break sharing at one position, as a gradient step would.
  layer.weights()(2, 2) += 0.5;
  project_shared_kernel(layer, spec);
  const auto kernel = extract_kernel(layer, spec);
  for (std::size_t j = 0; j < spec.out_size(); ++j) {
    EXPECT_NEAR(layer.weights()(j, j), kernel[0], 1e-14);
    EXPECT_NEAR(layer.weights()(j, j + 1), kernel[1], 1e-14);
  }
}

TEST(Gradients, MatchFiniteDifferenceSensitivities) {
  Rng rng(31);
  const auto net = NetworkBuilder(3)
                       .activation(ActivationKind::kSigmoid, 1.0)
                       .hidden(5)
                       .hidden(4)
                       .build(rng);
  const std::vector<double> x{0.2, 0.8, 0.5};
  const auto trace = net.forward_trace(x);
  const auto grads = output_gradients(net, trace);
  ASSERT_EQ(grads.size(), 2u);

  // Perturb each y^(l)_j via a hook and compare the output delta.
  const double h = 1e-6;
  Workspace ws;
  for (std::size_t l = 1; l <= 2; ++l) {
    for (std::size_t j = 0; j < net.layer_width(l); ++j) {
      ForwardHooks hooks;
      hooks.post_activation = [&](std::size_t hl, std::span<double> y) {
        if (hl == l) y[j] += h;
      };
      const double perturbed = net.evaluate_hooked(x, hooks, ws);
      const double numeric = (perturbed - trace.output) / h;
      EXPECT_NEAR(grads[l - 1][j], numeric, 1e-4);
    }
  }
}

}  // namespace
}  // namespace wnf::nn
