// Observability tests: the tracing core (per-thread rings, balanced
// spans, unique ids, ring-wrap accounting, the pinned zero-event disabled
// path), the metrics registry (sharded counters under contention, the
// log-bucketed histogram, snapshot/reset semantics), SampleHistogram
// equivalence with the one-off percentile math it replaced, the JSON
// exporters round-tripping the strict lint, and the end-to-end story:
// tracing on/off is invisible to the bit-pinned serving outputs, and a
// SIGKILLed worker loses only its unflushed ring while the host-side
// fault instants survive.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "nn/builder.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/pool.hpp"
#include "transport/host.hpp"
#include "transport/worker.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wnf::obs {
namespace {

/// In a WNF_OBS_TRACING=OFF build record() compiles out: tests that
/// assert on recorded events skip themselves (the disabled-path and
/// registry/exporter/bit-identity tests still run — those surfaces exist
/// in every build).
#define SKIP_WITHOUT_RECORDING()                                     \
  if (!WNF_OBS_ENABLED) {                                            \
    GTEST_SKIP() << "tracing compiled out (WNF_OBS_TRACING=OFF)";    \
  }

/// Every trace test runs inside one of these: fresh rings on entry, and
/// tracing switched off + rings dropped again on exit so no test leaks
/// events (or an enabled flag) into the next.
struct TraceSandbox {
  explicit TraceSandbox(bool enable = true) {
    set_enabled(false);
    TraceLog::instance().reset();
    set_enabled(enable);
  }
  ~TraceSandbox() {
    set_enabled(false);
    TraceLog::instance().reset();
  }
};

nn::FeedForwardNetwork obs_net(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(3)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(7)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.5)
      .build(rng);
}

std::vector<std::vector<double>> obs_workload(std::size_t count,
                                              std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::vector<double>> workload(count);
  for (auto& x : workload) {
    x = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return workload;
}

/// Max span-nesting-stack imbalance over one thread's events; 0 means
/// every begin met its end in LIFO order.
bool spans_balance(const std::vector<TraceEvent>& events) {
  int depth = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kSpanBegin) ++depth;
    if (event.kind == EventKind::kSpanEnd) {
      if (depth == 0) return false;  // end without a begin
      --depth;
    }
  }
  return depth == 0;
}

// ------------------------------------------------------------ trace core

TEST(Trace, SpansBalancePerThreadAcrossThreads) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const ScopedSpan outer(TraceName::kExecute, std::uint64_t(i));
        const ScopedSpan inner(TraceName::kWorkerDecode);
        instant(TraceName::kDeliver, std::uint64_t(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto collected = TraceLog::instance().collect();
  std::size_t ring_count = 0;
  for (const ThreadEvents& ring : collected) {
    if (ring.events.empty()) continue;
    ++ring_count;
    EXPECT_TRUE(spans_balance(ring.events)) << "ring " << ring.tid;
    EXPECT_EQ(ring.dropped, 0u);
    std::size_t begins = 0;
    std::size_t ends = 0;
    for (const TraceEvent& event : ring.events) {
      if (event.kind == EventKind::kSpanBegin) ++begins;
      if (event.kind == EventKind::kSpanEnd) ++ends;
      EXPECT_GT(event.ts_ns, 0u);
    }
    EXPECT_EQ(begins, std::size_t{2 * kSpansPerThread});
    EXPECT_EQ(ends, begins);
  }
  EXPECT_EQ(ring_count, std::size_t{kThreads});
}

TEST(Trace, TimestampsAreMonotonicPerThread) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  for (int i = 0; i < 200; ++i) instant(TraceName::kDeliver, std::uint64_t(i));
  const auto collected = TraceLog::instance().collect();
  ASSERT_FALSE(collected.empty());
  for (const ThreadEvents& ring : collected) {
    for (std::size_t i = 1; i < ring.events.size(); ++i) {
      EXPECT_GE(ring.events[i].ts_ns, ring.events[i - 1].ts_ns);
    }
  }
}

TEST(Trace, SpanIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kIdsPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &per_thread] {
      per_thread[t].reserve(kIdsPerThread);
      for (int i = 0; i < kIdsPerThread; ++i) {
        per_thread[t].push_back(next_span_id());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::uint64_t> seen;
  for (const auto& ids : per_thread) {
    for (const std::uint64_t id : ids) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(seen.size(), std::size_t{kThreads * kIdsPerThread});
}

TEST(Trace, DisabledPathRecordsExactlyNothing) {
  TraceSandbox sandbox(/*enable=*/false);
  ASSERT_FALSE(enabled());
  for (int i = 0; i < 100; ++i) {
    span_begin(TraceName::kExecute, std::uint64_t(i));
    span_end(TraceName::kExecute, std::uint64_t(i));
    async_begin(TraceName::kRequest, std::uint64_t(i));
    async_end(TraceName::kRequest, std::uint64_t(i));
    instant(TraceName::kSigkill, std::uint64_t(i));
    counter(TraceName::kQueueDepth, std::uint64_t(i));
    const ScopedSpan span(TraceName::kEncode);
  }
  EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  EXPECT_TRUE(TraceLog::instance().collect().empty());
}

TEST(Trace, ScopedSpanArmsOnConstruction) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  {
    const ScopedSpan span(TraceName::kExecute, 9);
    // Switched off mid-span: the armed destructor still writes the end,
    // so the ring never holds a dangling begin.
    set_enabled(false);
  }
  set_enabled(true);
  const auto collected = TraceLog::instance().collect();
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const ThreadEvents& ring : collected) {
    for (const TraceEvent& event : ring.events) {
      if (event.kind == EventKind::kSpanBegin) ++begins;
      if (event.kind == EventKind::kSpanEnd) ++ends;
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(Trace, RingWrapKeepsNewestEventsAndCountsDropped) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  TraceLog::instance().set_ring_capacity(64);
  TraceLog::instance().reset();  // rebuild this thread's ring at 64 slots
  constexpr std::uint64_t kEvents = 200;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    instant(TraceName::kDeliver, i);
  }
  const auto collected = TraceLog::instance().collect();
  ASSERT_EQ(collected.size(), 1u);
  const ThreadEvents& ring = collected[0];
  EXPECT_EQ(ring.events.size(), 64u);
  EXPECT_EQ(ring.dropped, kEvents - 64);
  // Oldest-first, and the survivors are exactly the newest events.
  for (std::size_t i = 0; i < ring.events.size(); ++i) {
    EXPECT_EQ(ring.events[i].id, kEvents - 64 + i);
  }
  TraceLog::instance().set_ring_capacity(std::size_t{1} << 15);
}

TEST(Trace, DrainThreadRingEmptiesOnlyTheCaller) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  instant(TraceName::kDeliver, 1);
  instant(TraceName::kDeliver, 2);
  auto [events, dropped] = TraceLog::instance().drain_thread_ring();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].id, 2u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  instant(TraceName::kDeliver, 3);  // the drained ring keeps recording
  EXPECT_EQ(TraceLog::instance().total_events(), 1u);
}

TEST(Trace, IngestedRemoteEventsCountTowardTotals) {
  TraceSandbox sandbox;
  std::vector<TraceEvent> events(3);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i] = {1000 + i, i, 0, TraceName::kWorkerExecute,
                 EventKind::kInstant};
  }
  TraceLog::instance().ingest_remote(4242, 0, -500, events, 7);
  const auto remote = TraceLog::instance().remote();
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].pid, 4242u);
  EXPECT_EQ(remote[0].clock_offset_ns, -500);
  EXPECT_EQ(remote[0].dropped, 7u);
  EXPECT_EQ(remote[0].events.size(), 3u);
  EXPECT_EQ(TraceLog::instance().total_events(), 3u);
  TraceLog::instance().reset();
  EXPECT_TRUE(TraceLog::instance().remote().empty());
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterIsExactUnderContention) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), std::int64_t{kThreads} * kAddsPerThread);
  counter.add(-5);
  EXPECT_EQ(counter.value(), std::int64_t{kThreads} * kAddsPerThread - 5);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Metrics, LogHistogramBucketsWithinOneOctave) {
  LogHistogram hist;
  Rng rng(11);
  double min_seen = 1e300;
  double max_seen = 0.0;
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(1e-6, 1e-2);
    hist.observe(x);
    min_seen = std::min(min_seen, x);
    max_seen = std::max(max_seen, x);
    sum += x;
  }
  EXPECT_EQ(hist.count(), 5000u);
  EXPECT_DOUBLE_EQ(hist.min(), min_seen);
  EXPECT_DOUBLE_EQ(hist.max(), max_seen);
  EXPECT_NEAR(hist.sum(), sum, 1e-9 * sum);
  // quantile() answers from bucket upper bounds: within one power of two
  // of the exact value.
  std::vector<double> xs;
  xs.reserve(5000);
  Rng replay_rng(11);
  for (int i = 0; i < 5000; ++i) xs.push_back(replay_rng.uniform(1e-6, 1e-2));
  const double exact = percentile(xs, 0.5);
  const double est = hist.quantile(0.5);
  EXPECT_GE(est, exact);
  EXPECT_LE(est, exact * 2.0);
}

TEST(Metrics, RegistrySnapshotIsSortedAndResetKeepsPointers) {
  MetricsRegistry registry;
  Counter* b = &registry.counter("b.second");
  Counter* a = &registry.counter("a.first");
  LogHistogram* h = &registry.histogram("z.latency");
  a->add(3);
  b->add(5);
  h->observe(0.25);
  EXPECT_EQ(&registry.counter("a.first"), a);  // lookup is idempotent

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[0].value, 3);
  EXPECT_EQ(snapshot.counters[1].name, "b.second");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);

  registry.reset();
  EXPECT_EQ(a->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  a->add(1);  // cached pointers stay valid across reset (the rebind path)
  EXPECT_EQ(registry.snapshot().counters[0].value, 1);
}

TEST(Metrics, SampleHistogramMatchesPercentileMath) {
  SampleHistogram hist;
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 1777; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    hist.add(x);
    xs.push_back(x);
  }
  const Quantiles q = hist.quantiles();
  EXPECT_DOUBLE_EQ(q.p50, percentile(xs, 0.50));
  EXPECT_DOUBLE_EQ(q.p95, percentile(xs, 0.95));
  EXPECT_DOUBLE_EQ(q.p99, percentile(xs, 0.99));
  EXPECT_DOUBLE_EQ(q.p999, percentile(xs, 0.999));
  EXPECT_DOUBLE_EQ(hist.quantile(0.25), percentile(xs, 0.25));
  const Summary summary = hist.summary();
  const Summary expected = summarize(xs);
  EXPECT_DOUBLE_EQ(summary.mean, expected.mean);
  EXPECT_DOUBLE_EQ(summary.max, expected.max);

  const SampleHistogram empty;
  const Quantiles zeros = empty.quantiles();
  EXPECT_EQ(zeros.p50, 0.0);
  EXPECT_EQ(zeros.p999, 0.0);
}

// ------------------------------------------------------------- exporters

TEST(Export, ChromeTraceRoundTripsStrictJsonLint) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  {
    const ScopedSpan span(TraceName::kDispatch, 1, 2);
    async_begin(TraceName::kWire, 42, 0);
    instant(TraceName::kSigkill, 0, 9999);
    instant(TraceName::kRespawn, 0, 10000);
    instant(TraceName::kRebindEvent, 1);
    counter(TraceName::kQueueDepth, 5);
    async_end(TraceName::kWire, 42);
  }
  // A fake worker flush: one span pair plus an instant, in the worker's
  // own clock domain with a large offset the exporter must apply.
  std::vector<TraceEvent> worker_events = {
      {100, 7, 3, TraceName::kWorkerExecute, EventKind::kSpanBegin},
      {200, 7, 0, TraceName::kWorkerExecute, EventKind::kSpanEnd},
      {300, 0, 1, TraceName::kWorkerFlush, EventKind::kInstant},
  };
  TraceLog::instance().ingest_remote(31337, 0, 1'000'000'000, worker_events,
                                     2);

  std::ostringstream out;
  const ChromeTraceSummary summary = write_chrome_trace(out);
  EXPECT_EQ(summary.events, 11u);
  EXPECT_EQ(summary.host_threads, 1u);
  EXPECT_EQ(summary.worker_processes, 1u);
  EXPECT_EQ(summary.worker_span_processes, 1u);
  EXPECT_EQ(summary.sigkill_instants, 1u);
  EXPECT_EQ(summary.respawn_instants, 1u);
  EXPECT_EQ(summary.rebind_instants, 1u);
  EXPECT_EQ(summary.dropped, 2u);

  const std::string text = out.str();
  const JsonLintResult lint = json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error << " at offset " << lint.error_offset;
  // The catalogue names appear as strings, not enum ordinals.
  EXPECT_NE(text.find(trace_name_string(TraceName::kWorkerExecute)),
            std::string::npos);
  EXPECT_NE(text.find(trace_name_string(TraceName::kSigkill)),
            std::string::npos);
}

TEST(Export, EmptyTraceIsStillValidJson) {
  TraceSandbox sandbox(/*enable=*/false);
  std::ostringstream out;
  const ChromeTraceSummary summary = write_chrome_trace(out);
  EXPECT_EQ(summary.events, 0u);
  const JsonLintResult lint = json_lint(out.str());
  EXPECT_TRUE(lint.ok) << lint.error;
}

TEST(Export, MetricsJsonRoundTripsStrictJsonLint) {
  MetricsRegistry registry;
  registry.counter("transport.shed").add(12);
  registry.histogram("transport.completion_time").observe(0.125);
  registry.histogram("transport.completion_time").observe(3.5);
  std::vector<NamedSnapshot> registries;
  registries.push_back({"fleet0", registry.snapshot()});
  const std::vector<TimeSeriesSample> series = {
      {0.5, 0, 100.0, 97.5, 2.5},
      {1.0, 1, 50.0, 50.0, 0.0},
  };
  std::ostringstream out;
  write_metrics_json(out, registries, series);
  const std::string text = out.str();
  const JsonLintResult lint = json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error << " at offset " << lint.error_offset;
  EXPECT_NE(text.find("transport.shed"), std::string::npos);
  EXPECT_NE(text.find("completed_rps"), std::string::npos);
}

TEST(Export, JsonLintRejectsNearMisses) {
  EXPECT_TRUE(json_lint("{\"a\": [1, 2.5e-3, null, true]}").ok);
  EXPECT_FALSE(json_lint("{\"a\": 1,}").ok);     // trailing comma
  EXPECT_FALSE(json_lint("{\"a\": 01}").ok);     // leading zero
  EXPECT_FALSE(json_lint("[1] []").ok);          // trailing garbage
  EXPECT_FALSE(json_lint("{\"a\": .5}").ok);     // bare fraction
  EXPECT_FALSE(json_lint("\"\\ud800\"").ok);     // lone surrogate
  EXPECT_FALSE(json_lint("").ok);                // no value at all
  const JsonLintResult bad = json_lint("{\"a\": nul}");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
}

// ------------------------------------------------- serving integration

TEST(ObsIntegration, PoolOutputsBitIdenticalWithTracingOnAndOff) {
  const auto net = obs_net();
  const auto workload = obs_workload(40);
  serve::ServeConfig config;
  config.replicas = 2;
  config.latency = {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
  config.seed = 77;

  std::vector<serve::RequestResult> quiet;
  {
    TraceSandbox sandbox(/*enable=*/false);
    serve::ReplicaPool pool(net, config);
    EXPECT_EQ(pool.submit_batch(workload), workload.size());
    quiet = pool.drain();
    EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  }

  TraceSandbox sandbox;
  serve::ReplicaPool pool(net, config);
  EXPECT_EQ(pool.submit_batch(workload), workload.size());
  const auto traced = pool.drain();

  ASSERT_EQ(traced.size(), quiet.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].id, quiet[i].id);
    EXPECT_DOUBLE_EQ(traced[i].output, quiet[i].output);
    EXPECT_DOUBLE_EQ(traced[i].completion_time, quiet[i].completion_time);
    EXPECT_EQ(traced[i].resets_sent, quiet[i].resets_sent);
  }

  // Bit-identity holds in every build; the event assertions below need a
  // build that can record.
  if (!WNF_OBS_ENABLED) return;

  // Every accepted request opened and closed its kRequest async pair, and
  // the replica-thread execute spans balance.
  std::size_t request_begins = 0;
  std::size_t request_ends = 0;
  const auto collected = TraceLog::instance().collect();
  for (const ThreadEvents& ring : collected) {
    EXPECT_TRUE(spans_balance(ring.events)) << "ring " << ring.tid;
    for (const TraceEvent& event : ring.events) {
      if (event.name != TraceName::kRequest) continue;
      if (event.kind == EventKind::kAsyncBegin) ++request_begins;
      if (event.kind == EventKind::kAsyncEnd) ++request_ends;
    }
  }
  EXPECT_EQ(request_begins, workload.size());
  EXPECT_EQ(request_ends, workload.size());

  const MetricsSnapshot snapshot = pool.metrics().snapshot();
  bool saw_completion = false;
  for (const auto& row : snapshot.histograms) {
    if (row.name == "serve.completion_time") {
      saw_completion = true;
      EXPECT_EQ(row.count, workload.size());
    }
  }
  EXPECT_TRUE(saw_completion);
}

TEST(ObsIntegration, WorkerRingFlushSurvivesSigkill) {
  if (!transport::transport_available()) {
    GTEST_SKIP() << "no POSIX fork/socketpair on this platform";
  }
  const auto net = obs_net(13);
  const auto workload = obs_workload(48, 21);
  transport::TransportConfig config;
  config.workers = 2;
  config.latency = {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
  config.seed = 4242;

  std::vector<serve::RequestResult> quiet;
  {
    TraceSandbox sandbox(/*enable=*/false);
    transport::WorkerHost reference(net, config);
    reference.set_crash_script({{0, 12, 30}});
    EXPECT_EQ(reference.submit_batch(workload), workload.size());
    quiet = reference.drain();
  }

  TraceSandbox sandbox;
  serve::ServeReport report;
  {
    transport::WorkerHost host(net, config);
    host.set_crash_script({{0, 12, 30}});
    EXPECT_EQ(host.submit_batch(workload), workload.size());
    const auto traced = host.drain();
    report = host.report();
    EXPECT_EQ(report.worker_restarts, 1u);

    ASSERT_EQ(traced.size(), quiet.size());
    for (std::size_t i = 0; i < traced.size(); ++i) {
      EXPECT_EQ(traced[i].id, quiet[i].id);
      EXPECT_DOUBLE_EQ(traced[i].output, quiet[i].output);
    }
    // Host destructor: workers get Shutdown, flush their rings as
    // Telemetry frames, and the host ingests them before closing.
  }

  if (!WNF_OBS_ENABLED) return;  // below: recorded-event assertions

  std::size_t sigkills = 0;
  std::size_t respawns = 0;
  std::size_t resubmits = 0;
  for (const ThreadEvents& ring : TraceLog::instance().collect()) {
    for (const TraceEvent& event : ring.events) {
      if (event.kind != EventKind::kInstant) continue;
      if (event.name == TraceName::kSigkill) ++sigkills;
      if (event.name == TraceName::kRespawn) ++respawns;
      if (event.name == TraceName::kResubmit) ++resubmits;
    }
  }
  // The kill and the recovery are host-side instants: they survive no
  // matter what the victim's ring held.
  EXPECT_EQ(sigkills, 1u);
  EXPECT_EQ(respawns, 1u);
  EXPECT_EQ(resubmits, report.resubmitted);

  // The survivor and the respawned worker flushed at shutdown; the
  // victim's unflushed events died with it (by design). Each flushing pid
  // shipped real execute spans.
  const auto remote = TraceLog::instance().remote();
  std::set<std::uint32_t> pids;
  for (const RemoteEvents& batch : remote) {
    bool executed = false;
    for (const TraceEvent& event : batch.events) {
      if (event.name == TraceName::kWorkerExecute) executed = true;
    }
    if (executed) pids.insert(batch.pid);
  }
  EXPECT_GE(pids.size(), 2u);
}

}  // namespace
}  // namespace wnf::obs
