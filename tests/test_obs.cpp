// Observability tests: the tracing core (per-thread rings, balanced
// spans, unique ids, ring-wrap accounting, the pinned zero-event disabled
// path), the metrics registry (sharded counters under contention, the
// log-bucketed histogram, snapshot/reset semantics), SampleHistogram
// equivalence with the one-off percentile math it replaced, the JSON
// exporters round-tripping the strict lint, and the end-to-end story:
// tracing on/off is invisible to the bit-pinned serving outputs, and a
// SIGKILLed worker loses only its unflushed ring while the host-side
// fault instants survive.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "nn/builder.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "serve/pool.hpp"
#include "transport/host.hpp"
#include "transport/worker.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wnf::obs {
namespace {

/// In a WNF_OBS_TRACING=OFF build record() compiles out: tests that
/// assert on recorded events skip themselves (the disabled-path and
/// registry/exporter/bit-identity tests still run — those surfaces exist
/// in every build).
#define SKIP_WITHOUT_RECORDING()                                     \
  if (!WNF_OBS_ENABLED) {                                            \
    GTEST_SKIP() << "tracing compiled out (WNF_OBS_TRACING=OFF)";    \
  }

/// Every trace test runs inside one of these: fresh rings on entry, and
/// tracing switched off + rings dropped again on exit so no test leaks
/// events (or an enabled flag) into the next.
struct TraceSandbox {
  explicit TraceSandbox(bool enable = true) {
    set_enabled(false);
    TraceLog::instance().reset();
    set_enabled(enable);
  }
  ~TraceSandbox() {
    set_enabled(false);
    TraceLog::instance().reset();
  }
};

nn::FeedForwardNetwork obs_net(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(3)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(7)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.5)
      .build(rng);
}

std::vector<std::vector<double>> obs_workload(std::size_t count,
                                              std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::vector<double>> workload(count);
  for (auto& x : workload) {
    x = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return workload;
}

/// Max span-nesting-stack imbalance over one thread's events; 0 means
/// every begin met its end in LIFO order.
bool spans_balance(const std::vector<TraceEvent>& events) {
  int depth = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kSpanBegin) ++depth;
    if (event.kind == EventKind::kSpanEnd) {
      if (depth == 0) return false;  // end without a begin
      --depth;
    }
  }
  return depth == 0;
}

// ------------------------------------------------------------ trace core

TEST(Trace, SpansBalancePerThreadAcrossThreads) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const ScopedSpan outer(TraceName::kExecute, std::uint64_t(i));
        const ScopedSpan inner(TraceName::kWorkerDecode);
        instant(TraceName::kDeliver, std::uint64_t(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto collected = TraceLog::instance().collect();
  std::size_t ring_count = 0;
  for (const ThreadEvents& ring : collected) {
    if (ring.events.empty()) continue;
    ++ring_count;
    EXPECT_TRUE(spans_balance(ring.events)) << "ring " << ring.tid;
    EXPECT_EQ(ring.dropped, 0u);
    std::size_t begins = 0;
    std::size_t ends = 0;
    for (const TraceEvent& event : ring.events) {
      if (event.kind == EventKind::kSpanBegin) ++begins;
      if (event.kind == EventKind::kSpanEnd) ++ends;
      EXPECT_GT(event.ts_ns, 0u);
    }
    EXPECT_EQ(begins, std::size_t{2 * kSpansPerThread});
    EXPECT_EQ(ends, begins);
  }
  EXPECT_EQ(ring_count, std::size_t{kThreads});
}

TEST(Trace, TimestampsAreMonotonicPerThread) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  for (int i = 0; i < 200; ++i) instant(TraceName::kDeliver, std::uint64_t(i));
  const auto collected = TraceLog::instance().collect();
  ASSERT_FALSE(collected.empty());
  for (const ThreadEvents& ring : collected) {
    for (std::size_t i = 1; i < ring.events.size(); ++i) {
      EXPECT_GE(ring.events[i].ts_ns, ring.events[i - 1].ts_ns);
    }
  }
}

TEST(Trace, SpanIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kIdsPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &per_thread] {
      per_thread[t].reserve(kIdsPerThread);
      for (int i = 0; i < kIdsPerThread; ++i) {
        per_thread[t].push_back(next_span_id());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::uint64_t> seen;
  for (const auto& ids : per_thread) {
    for (const std::uint64_t id : ids) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(seen.size(), std::size_t{kThreads * kIdsPerThread});
}

TEST(Trace, DisabledPathRecordsExactlyNothing) {
  TraceSandbox sandbox(/*enable=*/false);
  ASSERT_FALSE(enabled());
  for (int i = 0; i < 100; ++i) {
    span_begin(TraceName::kExecute, std::uint64_t(i));
    span_end(TraceName::kExecute, std::uint64_t(i));
    async_begin(TraceName::kRequest, std::uint64_t(i));
    async_end(TraceName::kRequest, std::uint64_t(i));
    instant(TraceName::kSigkill, std::uint64_t(i));
    counter(TraceName::kQueueDepth, std::uint64_t(i));
    const ScopedSpan span(TraceName::kEncode);
  }
  EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  EXPECT_TRUE(TraceLog::instance().collect().empty());
}

TEST(Trace, ScopedSpanArmsOnConstruction) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  {
    const ScopedSpan span(TraceName::kExecute, 9);
    // Switched off mid-span: the armed destructor still writes the end,
    // so the ring never holds a dangling begin.
    set_enabled(false);
  }
  set_enabled(true);
  const auto collected = TraceLog::instance().collect();
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const ThreadEvents& ring : collected) {
    for (const TraceEvent& event : ring.events) {
      if (event.kind == EventKind::kSpanBegin) ++begins;
      if (event.kind == EventKind::kSpanEnd) ++ends;
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(Trace, RingWrapKeepsNewestEventsAndCountsDropped) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  TraceLog::instance().set_ring_capacity(64);
  TraceLog::instance().reset();  // rebuild this thread's ring at 64 slots
  constexpr std::uint64_t kEvents = 200;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    instant(TraceName::kDeliver, i);
  }
  const auto collected = TraceLog::instance().collect();
  ASSERT_EQ(collected.size(), 1u);
  const ThreadEvents& ring = collected[0];
  EXPECT_EQ(ring.events.size(), 64u);
  EXPECT_EQ(ring.dropped, kEvents - 64);
  // Oldest-first, and the survivors are exactly the newest events.
  for (std::size_t i = 0; i < ring.events.size(); ++i) {
    EXPECT_EQ(ring.events[i].id, kEvents - 64 + i);
  }
  TraceLog::instance().set_ring_capacity(std::size_t{1} << 15);
}

TEST(Trace, DrainThreadRingEmptiesOnlyTheCaller) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  instant(TraceName::kDeliver, 1);
  instant(TraceName::kDeliver, 2);
  auto [events, dropped] = TraceLog::instance().drain_thread_ring();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].id, 2u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  instant(TraceName::kDeliver, 3);  // the drained ring keeps recording
  EXPECT_EQ(TraceLog::instance().total_events(), 1u);
}

TEST(Trace, IngestedRemoteEventsCountTowardTotals) {
  TraceSandbox sandbox;
  std::vector<TraceEvent> events(3);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i] = {1000 + i, i, 0, TraceName::kWorkerExecute,
                 EventKind::kInstant};
  }
  TraceLog::instance().ingest_remote(4242, 0, -500, events, 7);
  const auto remote = TraceLog::instance().remote();
  ASSERT_EQ(remote.size(), 1u);
  EXPECT_EQ(remote[0].pid, 4242u);
  EXPECT_EQ(remote[0].clock_offset_ns, -500);
  EXPECT_EQ(remote[0].dropped, 7u);
  EXPECT_EQ(remote[0].events.size(), 3u);
  EXPECT_EQ(TraceLog::instance().total_events(), 3u);
  TraceLog::instance().reset();
  EXPECT_TRUE(TraceLog::instance().remote().empty());
}

// -------------------------------------------------------------- metrics

TEST(Metrics, CounterIsExactUnderContention) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), std::int64_t{kThreads} * kAddsPerThread);
  counter.add(-5);
  EXPECT_EQ(counter.value(), std::int64_t{kThreads} * kAddsPerThread - 5);
  counter.reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(Metrics, LogHistogramBucketsWithinOneOctave) {
  LogHistogram hist;
  Rng rng(11);
  double min_seen = 1e300;
  double max_seen = 0.0;
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(1e-6, 1e-2);
    hist.observe(x);
    min_seen = std::min(min_seen, x);
    max_seen = std::max(max_seen, x);
    sum += x;
  }
  EXPECT_EQ(hist.count(), 5000u);
  EXPECT_DOUBLE_EQ(hist.min(), min_seen);
  EXPECT_DOUBLE_EQ(hist.max(), max_seen);
  EXPECT_NEAR(hist.sum(), sum, 1e-9 * sum);
  // quantile() answers from bucket upper bounds: within one power of two
  // of the exact value.
  std::vector<double> xs;
  xs.reserve(5000);
  Rng replay_rng(11);
  for (int i = 0; i < 5000; ++i) xs.push_back(replay_rng.uniform(1e-6, 1e-2));
  const double exact = percentile(xs, 0.5);
  const double est = hist.quantile(0.5);
  EXPECT_GE(est, exact);
  EXPECT_LE(est, exact * 2.0);
}

TEST(Metrics, RegistrySnapshotIsSortedAndResetKeepsPointers) {
  MetricsRegistry registry;
  Counter* b = &registry.counter("b.second");
  Counter* a = &registry.counter("a.first");
  LogHistogram* h = &registry.histogram("z.latency");
  a->add(3);
  b->add(5);
  h->observe(0.25);
  EXPECT_EQ(&registry.counter("a.first"), a);  // lookup is idempotent

  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[0].value, 3);
  EXPECT_EQ(snapshot.counters[1].name, "b.second");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1u);

  registry.reset();
  EXPECT_EQ(a->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  a->add(1);  // cached pointers stay valid across reset (the rebind path)
  EXPECT_EQ(registry.snapshot().counters[0].value, 1);
}

TEST(Metrics, SampleHistogramMatchesPercentileMath) {
  SampleHistogram hist;
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 1777; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    hist.add(x);
    xs.push_back(x);
  }
  const Quantiles q = hist.quantiles();
  EXPECT_DOUBLE_EQ(q.p50, percentile(xs, 0.50));
  EXPECT_DOUBLE_EQ(q.p95, percentile(xs, 0.95));
  EXPECT_DOUBLE_EQ(q.p99, percentile(xs, 0.99));
  EXPECT_DOUBLE_EQ(q.p999, percentile(xs, 0.999));
  EXPECT_DOUBLE_EQ(hist.quantile(0.25), percentile(xs, 0.25));
  const Summary summary = hist.summary();
  const Summary expected = summarize(xs);
  EXPECT_DOUBLE_EQ(summary.mean, expected.mean);
  EXPECT_DOUBLE_EQ(summary.max, expected.max);

  const SampleHistogram empty;
  const Quantiles zeros = empty.quantiles();
  EXPECT_EQ(zeros.p50, 0.0);
  EXPECT_EQ(zeros.p999, 0.0);
}

// ------------------------------------------------------------- exporters

TEST(Export, ChromeTraceRoundTripsStrictJsonLint) {
  SKIP_WITHOUT_RECORDING();
  TraceSandbox sandbox;
  {
    const ScopedSpan span(TraceName::kDispatch, 1, 2);
    async_begin(TraceName::kWire, 42, 0);
    instant(TraceName::kSigkill, 0, 9999);
    instant(TraceName::kRespawn, 0, 10000);
    instant(TraceName::kRebindEvent, 1);
    counter(TraceName::kQueueDepth, 5);
    async_end(TraceName::kWire, 42);
  }
  // A fake worker flush: one span pair plus an instant, in the worker's
  // own clock domain with a large offset the exporter must apply.
  std::vector<TraceEvent> worker_events = {
      {100, 7, 3, TraceName::kWorkerExecute, EventKind::kSpanBegin},
      {200, 7, 0, TraceName::kWorkerExecute, EventKind::kSpanEnd},
      {300, 0, 1, TraceName::kWorkerFlush, EventKind::kInstant},
  };
  TraceLog::instance().ingest_remote(31337, 0, 1'000'000'000, worker_events,
                                     2);

  std::ostringstream out;
  const ChromeTraceSummary summary = write_chrome_trace(out);
  EXPECT_EQ(summary.events, 11u);
  EXPECT_EQ(summary.host_threads, 1u);
  EXPECT_EQ(summary.worker_processes, 1u);
  EXPECT_EQ(summary.worker_span_processes, 1u);
  EXPECT_EQ(summary.sigkill_instants, 1u);
  EXPECT_EQ(summary.respawn_instants, 1u);
  EXPECT_EQ(summary.rebind_instants, 1u);
  EXPECT_EQ(summary.dropped, 2u);

  const std::string text = out.str();
  const JsonLintResult lint = json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error << " at offset " << lint.error_offset;
  // The catalogue names appear as strings, not enum ordinals.
  EXPECT_NE(text.find(trace_name_string(TraceName::kWorkerExecute)),
            std::string::npos);
  EXPECT_NE(text.find(trace_name_string(TraceName::kSigkill)),
            std::string::npos);
}

TEST(Export, EmptyTraceIsStillValidJson) {
  TraceSandbox sandbox(/*enable=*/false);
  std::ostringstream out;
  const ChromeTraceSummary summary = write_chrome_trace(out);
  EXPECT_EQ(summary.events, 0u);
  const JsonLintResult lint = json_lint(out.str());
  EXPECT_TRUE(lint.ok) << lint.error;
}

TEST(Export, MetricsJsonRoundTripsStrictJsonLint) {
  MetricsRegistry registry;
  registry.counter("transport.shed").add(12);
  registry.histogram("transport.completion_time").observe(0.125);
  registry.histogram("transport.completion_time").observe(3.5);
  std::vector<NamedSnapshot> registries;
  registries.push_back({"fleet0", registry.snapshot()});
  const std::vector<TimeSeriesSample> series = {
      {0.5, 0, 100.0, 97.5, 2.5},
      {1.0, 1, 50.0, 50.0, 0.0},
  };
  std::ostringstream out;
  write_metrics_json(out, registries, series);
  const std::string text = out.str();
  const JsonLintResult lint = json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error << " at offset " << lint.error_offset;
  EXPECT_NE(text.find("transport.shed"), std::string::npos);
  EXPECT_NE(text.find("completed_rps"), std::string::npos);
}

TEST(Export, JsonLintRejectsNearMisses) {
  EXPECT_TRUE(json_lint("{\"a\": [1, 2.5e-3, null, true]}").ok);
  EXPECT_FALSE(json_lint("{\"a\": 1,}").ok);     // trailing comma
  EXPECT_FALSE(json_lint("{\"a\": 01}").ok);     // leading zero
  EXPECT_FALSE(json_lint("[1] []").ok);          // trailing garbage
  EXPECT_FALSE(json_lint("{\"a\": .5}").ok);     // bare fraction
  EXPECT_FALSE(json_lint("\"\\ud800\"").ok);     // lone surrogate
  EXPECT_FALSE(json_lint("").ok);                // no value at all
  const JsonLintResult bad = json_lint("{\"a\": nul}");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
}

// ------------------------------------------------- serving integration

TEST(ObsIntegration, PoolOutputsBitIdenticalWithTracingOnAndOff) {
  const auto net = obs_net();
  const auto workload = obs_workload(40);
  serve::ServeConfig config;
  config.replicas = 2;
  config.latency = {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
  config.seed = 77;

  std::vector<serve::RequestResult> quiet;
  {
    TraceSandbox sandbox(/*enable=*/false);
    serve::ReplicaPool pool(net, config);
    EXPECT_EQ(pool.submit_batch(workload), workload.size());
    quiet = pool.drain();
    EXPECT_EQ(TraceLog::instance().total_events(), 0u);
  }

  TraceSandbox sandbox;
  serve::ReplicaPool pool(net, config);
  EXPECT_EQ(pool.submit_batch(workload), workload.size());
  const auto traced = pool.drain();

  ASSERT_EQ(traced.size(), quiet.size());
  for (std::size_t i = 0; i < traced.size(); ++i) {
    EXPECT_EQ(traced[i].id, quiet[i].id);
    EXPECT_DOUBLE_EQ(traced[i].output, quiet[i].output);
    EXPECT_DOUBLE_EQ(traced[i].completion_time, quiet[i].completion_time);
    EXPECT_EQ(traced[i].resets_sent, quiet[i].resets_sent);
  }

  // Bit-identity holds in every build; the event assertions below need a
  // build that can record.
  if (!WNF_OBS_ENABLED) return;

  // Every accepted request opened and closed its kRequest async pair, and
  // the replica-thread execute spans balance.
  std::size_t request_begins = 0;
  std::size_t request_ends = 0;
  const auto collected = TraceLog::instance().collect();
  for (const ThreadEvents& ring : collected) {
    EXPECT_TRUE(spans_balance(ring.events)) << "ring " << ring.tid;
    for (const TraceEvent& event : ring.events) {
      if (event.name != TraceName::kRequest) continue;
      if (event.kind == EventKind::kAsyncBegin) ++request_begins;
      if (event.kind == EventKind::kAsyncEnd) ++request_ends;
    }
  }
  EXPECT_EQ(request_begins, workload.size());
  EXPECT_EQ(request_ends, workload.size());

  const MetricsSnapshot snapshot = pool.metrics().snapshot();
  bool saw_completion = false;
  for (const auto& row : snapshot.histograms) {
    if (row.name == "serve.completion_time") {
      saw_completion = true;
      EXPECT_EQ(row.count, workload.size());
    }
  }
  EXPECT_TRUE(saw_completion);
}

TEST(ObsIntegration, WorkerRingFlushSurvivesSigkill) {
  if (!transport::transport_available()) {
    GTEST_SKIP() << "no POSIX fork/socketpair on this platform";
  }
  const auto net = obs_net(13);
  const auto workload = obs_workload(48, 21);
  transport::TransportConfig config;
  config.workers = 2;
  config.latency = {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
  config.seed = 4242;

  std::vector<serve::RequestResult> quiet;
  {
    TraceSandbox sandbox(/*enable=*/false);
    transport::WorkerHost reference(net, config);
    reference.set_crash_script({{0, 12, 30}});
    EXPECT_EQ(reference.submit_batch(workload), workload.size());
    quiet = reference.drain();
  }

  TraceSandbox sandbox;
  serve::ServeReport report;
  {
    transport::WorkerHost host(net, config);
    host.set_crash_script({{0, 12, 30}});
    EXPECT_EQ(host.submit_batch(workload), workload.size());
    const auto traced = host.drain();
    report = host.report();
    EXPECT_EQ(report.worker_restarts, 1u);

    ASSERT_EQ(traced.size(), quiet.size());
    for (std::size_t i = 0; i < traced.size(); ++i) {
      EXPECT_EQ(traced[i].id, quiet[i].id);
      EXPECT_DOUBLE_EQ(traced[i].output, quiet[i].output);
    }
    // Host destructor: workers get Shutdown, flush their rings as
    // Telemetry frames, and the host ingests them before closing.
  }

  if (!WNF_OBS_ENABLED) return;  // below: recorded-event assertions

  std::size_t sigkills = 0;
  std::size_t respawns = 0;
  std::size_t resubmits = 0;
  for (const ThreadEvents& ring : TraceLog::instance().collect()) {
    for (const TraceEvent& event : ring.events) {
      if (event.kind != EventKind::kInstant) continue;
      if (event.name == TraceName::kSigkill) ++sigkills;
      if (event.name == TraceName::kRespawn) ++respawns;
      if (event.name == TraceName::kResubmit) ++resubmits;
    }
  }
  // The kill and the recovery are host-side instants: they survive no
  // matter what the victim's ring held.
  EXPECT_EQ(sigkills, 1u);
  EXPECT_EQ(respawns, 1u);
  EXPECT_EQ(resubmits, report.resubmitted);

  // The survivor and the respawned worker flushed at shutdown; the
  // victim's unflushed events died with it (by design). Each flushing pid
  // shipped real execute spans.
  const auto remote = TraceLog::instance().remote();
  std::set<std::uint32_t> pids;
  for (const RemoteEvents& batch : remote) {
    bool executed = false;
    for (const TraceEvent& event : batch.events) {
      if (event.name == TraceName::kWorkerExecute) executed = true;
    }
    if (executed) pids.insert(batch.pid);
  }
  EXPECT_GE(pids.size(), 2u);
}

// --------------------------------------------------- histogram error bound

// Satellite pin for the documented LogHistogram error bound: quantile()
// answers from bucket upper bounds, so against the EXACT answer from a
// util::SampleHistogram fed the identical values, the estimate q for a
// true quantile v must satisfy v <= q < 2v (one-sided, under one octave)
// — at p50 and at the p99 the latency reports lean on, across several
// distributions and magnitudes.
TEST(Metrics, LogHistogramQuantilesPinnedAgainstExactHistogram) {
  const auto pin_one = [](std::uint64_t seed, double lo, double hi,
                          bool exponentiate) {
    LogHistogram log_hist;
    SampleHistogram exact_hist;
    Rng rng(seed);
    for (int i = 0; i < 4000; ++i) {
      double x = rng.uniform(lo, hi);
      if (exponentiate) x = std::exp(x);  // a heavy right tail
      log_hist.observe(x);
      exact_hist.add(x);
    }
    for (const double p : {0.50, 0.99}) {
      const double exact = exact_hist.quantile(p);
      const double estimate = log_hist.quantile(p);
      EXPECT_GE(estimate, exact)
          << "under-report at p=" << p << " seed=" << seed;
      EXPECT_LT(estimate, exact * 2.0)
          << "over an octave at p=" << p << " seed=" << seed;
    }
  };
  pin_one(11, 1e-6, 1e-2, false);   // microseconds-to-10ms latencies
  pin_one(12, 0.5, 400.0, false);   // O(1)..O(100) values
  pin_one(13, -6.0, 4.0, true);     // log-uniform across ten octaves
}

// ------------------------------------------------------------ snapshotter

/// Lints a snapshot stream file line by line; returns the lines (header
/// included) and requires the header to come first.
std::vector<std::string> read_and_lint_stream(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonLintResult lint = json_lint(line);
    EXPECT_TRUE(lint.ok) << path << " line " << lines.size() << ": "
                         << lint.error;
    lines.push_back(line);
  }
  EXPECT_FALSE(lines.empty()) << path;
  if (!lines.empty()) {
    EXPECT_NE(lines[0].find("\"kind\":\"header\""), std::string::npos);
  }
  return lines;
}

TEST(Snapshot, StreamLintsWindowsAreContiguousAndDeltasWindowLocal) {
  MetricsRegistry registry;
  Counter& requests = registry.counter("t.requests");
  LogHistogram& latency = registry.histogram("t.latency");
  const std::string path = "test_obs_snapshot_stream.jsonl";

  SnapshotterConfig config;
  config.path = path;
  config.interval_seconds = 0.01;
  config.label = "test_stream";
  Snapshotter snapshotter(config);
  snapshotter.add_source("app", &registry);
  ASSERT_TRUE(snapshotter.start());
  EXPECT_TRUE(snapshotter.running());

  requests.add(5);
  latency.observe(0.002);
  while (snapshotter.windows() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  requests.add(7);
  latency.observe(0.004);
  snapshotter.stop();
  EXPECT_FALSE(snapshotter.running());
  const std::uint64_t windows = snapshotter.windows();
  EXPECT_GE(windows, 2u);  // at least one periodic + the final partial

  const auto lines = read_and_lint_stream(path);
  ASSERT_EQ(lines.size(), windows + 1);
  // Window seqs are contiguous from 0, and the per-window deltas of
  // t.requests sum to everything that was ever added — windows partition
  // the counter's history, they never double-count or drop.
  std::int64_t total_delta = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    long seq = -1;
    const std::size_t at = lines[i].find("\"seq\":");
    ASSERT_NE(at, std::string::npos);
    ASSERT_EQ(std::sscanf(lines[i].c_str() + at, "\"seq\":%ld", &seq), 1);
    EXPECT_EQ(seq, static_cast<long>(i - 1));
    const std::size_t row = lines[i].find("\"name\":\"t.requests\",\"delta\":");
    if (row != std::string::npos) {
      long long delta = 0;
      ASSERT_EQ(std::sscanf(lines[i].c_str() + row,
                            "\"name\":\"t.requests\",\"delta\":%lld", &delta),
                1);
      total_delta += delta;
    }
  }
  EXPECT_EQ(total_delta, 12);
  std::remove(path.c_str());
}

TEST(Snapshot, RegistryResetIsDetectedAndReportedPerWindow) {
  MetricsRegistry registry;
  Counter& requests = registry.counter("t.requests");
  requests.add(100);  // nonzero BEFORE start: the baseline is 100
  const std::string path = "test_obs_snapshot_reset.jsonl";

  SnapshotterConfig config;
  config.path = path;
  config.interval_seconds = 0.01;
  Snapshotter snapshotter(config);
  snapshotter.add_source("app", &registry);
  ASSERT_TRUE(snapshotter.start());

  // The rebind pattern: the deployment resets its registry (counters go
  // BACKWARDS vs the sampler's baseline) and keeps counting from zero.
  registry.reset();
  requests.add(1);
  snapshotter.stop();

  bool saw_reset = false;
  for (const auto& line : read_and_lint_stream(path)) {
    if (line.find("\"reset\":true") != std::string::npos) saw_reset = true;
  }
  EXPECT_TRUE(saw_reset);
  // The meta registry saw it too (obs.snapshot.source_resets).
  bool counted = false;
  for (const auto& row : snapshotter.metrics().snapshot().counters) {
    if (row.name == "obs.snapshot.source_resets") counted = row.value >= 1;
  }
  EXPECT_TRUE(counted);
  std::remove(path.c_str());
}

TEST(Snapshot, TenantSamplesLandInTheCurrentWindow) {
  const std::string path = "test_obs_snapshot_tenants.jsonl";
  SnapshotterConfig config;
  config.path = path;
  config.interval_seconds = 60.0;  // only the final flush-on-stop window
  Snapshotter snapshotter(config);
  ASSERT_TRUE(snapshotter.start());
  TenantSample sample;
  sample.t_s = 0.5;
  sample.tenant = "acme";
  sample.offered_rps = 100.0;
  sample.completed_rps = 90.0;
  sample.shed_rps = 10.0;
  sample.slo_attainment = 0.9;
  snapshotter.add_tenant_sample(sample);
  snapshotter.stop();
  EXPECT_EQ(snapshotter.windows(), 1u);

  const auto lines = read_and_lint_stream(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"slo\":0.9"), std::string::npos);
}

// --------------------------------------------------------------- watchdog

/// Reads one obs.watchdog.* counter from a watchdog's registry.
std::int64_t watchdog_counter(const Watchdog& watchdog, const char* name) {
  for (const auto& row : watchdog.metrics().snapshot().counters) {
    if (row.name == name) return row.value;
  }
  ADD_FAILURE() << "no counter " << name;
  return -1;
}

TEST(Watchdog, EscalationLadderFiresExactlyOncePerEpisode) {
  // Deterministic ladder walk through the synchronous tick() seam: a
  // synthetic channel whose odometer the test freezes and advances.
  WatchdogConfig config;
  config.stall_seconds = 0.03;
  config.degrade_seconds = 0.06;
  config.respawn_seconds = 0.09;
  Watchdog watchdog(config);
  std::atomic<std::uint64_t> odometer{0};
  std::atomic<bool> active{true};
  const std::size_t channel = watchdog.add_channel(
      "synthetic", [&] { return odometer.load(); },
      [&] { return active.load(); });

  std::vector<StallEvent> stalls;
  watchdog.set_stall_callback(
      [&stalls](const StallEvent& event) { stalls.push_back(event); });
  std::vector<std::size_t> respawned;
  watchdog.set_respawn(
      [&respawned](std::size_t which) { respawned.push_back(which); });

  watchdog.tick();  // fresh channel: within deadline
  EXPECT_EQ(watchdog.health(channel), ChannelHealth::kHealthy);
  EXPECT_TRUE(stalls.empty());

  // Freeze past every deadline, ticking repeatedly: each ladder stage and
  // its side effects must fire exactly once for this single episode.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 5; ++i) watchdog.tick();
  EXPECT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].channel, channel);
  EXPECT_EQ(stalls[0].name, "synthetic");
  EXPECT_GE(stalls[0].stalled_seconds, config.stall_seconds);
  ASSERT_EQ(respawned.size(), 1u);
  EXPECT_EQ(respawned[0], channel);
  EXPECT_EQ(watchdog.health(channel), ChannelHealth::kDegraded);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.stalls"), 1);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.degraded"), 1);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.forced_respawns"), 1);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.recoveries"), 0);

  // ANY odometer change closes the episode.
  odometer.fetch_add(1);
  watchdog.tick();
  EXPECT_EQ(watchdog.health(channel), ChannelHealth::kHealthy);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.recoveries"), 1);

  // A second wedge is a NEW episode: the callback fires again.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 3; ++i) watchdog.tick();
  EXPECT_EQ(stalls.size(), 2u);
  EXPECT_EQ(respawned.size(), 2u);
}

TEST(Watchdog, InactiveChannelNeverStallsAndRecoveryIsSilent) {
  WatchdogConfig config;
  config.stall_seconds = 0.02;
  Watchdog watchdog(config);
  std::atomic<bool> active{false};
  const std::size_t channel = watchdog.add_channel(
      "idle", [] { return std::uint64_t{7}; },
      [&] { return active.load(); });
  int stall_calls = 0;
  watchdog.set_stall_callback([&stall_calls](const StallEvent&) {
    ++stall_calls;
  });

  // No outstanding work: frozen progress is not a stall, however long.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  watchdog.tick();
  EXPECT_EQ(watchdog.health(channel), ChannelHealth::kHealthy);
  EXPECT_EQ(stall_calls, 0);
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.stalls"), 0);
  // Going inactive also disarms an armed deadline: activate, wedge, then
  // deactivate before the deadline — still no stall.
  active.store(true);
  watchdog.tick();
  active.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  watchdog.tick();
  EXPECT_EQ(stall_calls, 0);
  // A healthy channel closing an episode that never opened counts no
  // recovery.
  EXPECT_EQ(watchdog_counter(watchdog, "obs.watchdog.recoveries"), 0);
}

TEST(Watchdog, MonitorThreadDetectsAStallWithinTheDeadline) {
  // The threaded path end to end: a wedged channel must be detected
  // within a few poll periods of the stall deadline.
  WatchdogConfig config;
  config.poll_seconds = 0.005;
  config.stall_seconds = 0.05;
  config.degrade_seconds = 60.0;  // never within this test's lifetime
  Watchdog watchdog(config);
  std::atomic<std::uint64_t> odometer{0};
  const std::size_t channel = watchdog.add_channel(
      "wedged", [&] { return odometer.load(); }, [] { return true; });
  std::atomic<int> stall_calls{0};
  watchdog.set_stall_callback([&stall_calls](const StallEvent&) {
    stall_calls.fetch_add(1);
  });
  watchdog.start();
  EXPECT_TRUE(watchdog.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (stall_calls.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watchdog.stop();
  EXPECT_EQ(stall_calls.load(), 1);
  EXPECT_EQ(watchdog.health(channel), ChannelHealth::kStalled);
}

// ------------------------------------------------------------- postmortem

TEST(Postmortem, CounterDeltasAreNameMatchedAndNonzeroOnly) {
  MetricsRegistry registry;
  Counter& frames = registry.counter("t.frames");
  Counter& idle = registry.counter("t.idle");
  frames.add(10);
  idle.add(3);
  const MetricsSnapshot base = registry.snapshot();
  frames.add(5);
  registry.counter("t.born_later").add(2);
  const auto deltas = postmortem_counter_deltas(registry.snapshot(), base);
  ASSERT_EQ(deltas.size(), 2u);  // idle didn't move: not reported
  EXPECT_EQ(deltas[0].name, "t.born_later");
  EXPECT_EQ(deltas[0].delta, 2);
  EXPECT_EQ(deltas[1].name, "t.frames");
  EXPECT_EQ(deltas[1].delta, 5);
}

TEST(Postmortem, ArtifactRoundTripsStrictLintWithEveryField) {
  PostmortemWriter writer(PostmortemConfig{"test_obs_postmortems"});
  PostmortemRecord record;
  record.worker = 3;
  record.pid = 4242;
  record.expected = true;
  record.torn_slots = 1;
  record.deployment = 2;
  record.inflight_ids = {17, 18, 21};
  record.recent = {
      {100, 9, 4, TraceName::kDispatch, EventKind::kInstant},
      {200, 10, 0, TraceName::kSigkill, EventKind::kInstant},
  };
  record.counter_deltas = {{"transport.batch_frames", 12}};

  const std::string path = writer.write(record);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(writer.written(), 1u);
  EXPECT_EQ(writer.write_errors(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const JsonLintResult lint = json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error;
  EXPECT_NE(text.find("\"kind\":\"postmortem\""), std::string::npos);
  EXPECT_NE(text.find("\"worker\":3"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":4242"), std::string::npos);
  EXPECT_NE(text.find("\"expected\":true"), std::string::npos);
  EXPECT_NE(text.find("\"torn_slots\":1"), std::string::npos);
  EXPECT_NE(text.find("\"deployment\":2"), std::string::npos);
  EXPECT_NE(text.find("\"inflight_ids\":[17,18,21]"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"sigkill\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"transport.batch_frames\",\"delta\":12"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wnf::obs
