// The over-provisioning relation (the paper's headline): replication
// preserves the function exactly, dilutes weight maxima, and grows the
// tolerated fault counts ~linearly.
#include <gtest/gtest.h>

#include "core/overprovision.hpp"
#include "core/tolerance.hpp"
#include "nn/builder.hpp"

namespace wnf::theory {
namespace {

nn::FeedForwardNetwork base_network(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(2)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(5)
      .hidden(4)
      .init(nn::InitKind::kUniform, 0.8)
      .build(rng);
}

class ReplicationLaw : public testing::TestWithParam<std::size_t> {};

TEST_P(ReplicationLaw, FunctionIsExactlyPreserved) {
  const std::size_t r = GetParam();
  const auto net = base_network();
  const auto replicated = replicate_neurons(net, r);
  Rng rng(17);
  nn::Workspace ws;
  for (int n = 0; n < 100; ++n) {
    std::vector<double> x{rng.uniform(), rng.uniform()};
    EXPECT_NEAR(replicated.evaluate(x, ws), net.evaluate(x, ws), 1e-11);
  }
}

TEST_P(ReplicationLaw, WidthsScaleAndDownstreamWeightsDilute) {
  const std::size_t r = GetParam();
  const auto net = base_network();
  const auto replicated = replicate_neurons(net, r);
  const auto convention = nn::WeightMaxConvention::kExcludeBias;
  EXPECT_EQ(replicated.layer_width(1), 5 * r);
  EXPECT_EQ(replicated.layer_width(2), 4 * r);
  // Layer 1 incoming weights are NOT diluted (senders = input clients).
  EXPECT_NEAR(replicated.weight_max(1, convention),
              net.weight_max(1, convention), 1e-12);
  // Layer 2 and output incoming weights shrink by r.
  EXPECT_NEAR(replicated.weight_max(2, convention),
              net.weight_max(2, convention) / static_cast<double>(r), 1e-12);
  EXPECT_NEAR(replicated.weight_max(3, convention),
              net.weight_max(3, convention) / static_cast<double>(r), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Factors, ReplicationLaw, testing::Values(1, 2, 3, 5));

TEST(Replication, ToleranceGrowsWithFactor) {
  const auto net = base_network();
  FepOptions options;
  options.mode = FailureMode::kCrash;
  const ErrorBudget budget{0.5, 0.1};
  std::size_t previous_total = 0;
  for (std::size_t r : {1, 2, 4}) {
    const auto replicated = replicate_neurons(net, r);
    const auto prof = profile_of(replicated, options);
    const auto greedy = greedy_max_distribution(prof, budget, options);
    const std::size_t total = total_faults(greedy);
    EXPECT_GE(total, previous_total);
    previous_total = total;
  }
  EXPECT_GT(previous_total, 0u);
}

TEST(Replication, IdentityFactorIsExactCopy) {
  const auto net = base_network();
  const auto copy = replicate_neurons(net, 1);
  EXPECT_TRUE(copy.approx_equal(net, 0.0));
}

TEST(PadLayer, FunctionPreservedAndWidthGrows) {
  const auto net = base_network();
  Rng rng(23);
  const auto padded = pad_layer(net, 1, 3, 0.5, rng);
  EXPECT_EQ(padded.layer_width(1), 8u);
  EXPECT_EQ(padded.layer_width(2), 4u);
  nn::Workspace ws;
  Rng probe(29);
  for (int n = 0; n < 50; ++n) {
    std::vector<double> x{probe.uniform(), probe.uniform()};
    EXPECT_NEAR(padded.evaluate(x, ws), net.evaluate(x, ws), 1e-12);
  }
}

TEST(PadLayer, TopLayerPaddingExtendsOutputWeights) {
  const auto net = base_network();
  Rng rng(31);
  const auto padded = pad_layer(net, 2, 2, 0.1, rng);
  EXPECT_EQ(padded.layer_width(2), 6u);
  EXPECT_EQ(padded.output_weights().size(), 6u);
  EXPECT_EQ(padded.output_weights()[4], 0.0);
  EXPECT_EQ(padded.output_weights()[5], 0.0);
}

TEST(PadLayer, DoesNotImproveTheBound) {
  // The ablation claim: zero-weight padding leaves w_m — and therefore the
  // Theorem-3 tolerance — unchanged, unlike replication.
  const auto net = base_network();
  Rng rng(37);
  const auto padded = pad_layer(net, 1, 10, 0.2, rng);
  FepOptions options;
  options.mode = FailureMode::kCrash;
  const ErrorBudget budget{0.5, 0.1};
  const auto base_prof = profile_of(net, options);
  const auto padded_prof = profile_of(padded, options);
  EXPECT_EQ(max_faults_single_layer(base_prof, 2, budget, options),
            max_faults_single_layer(padded_prof, 2, budget, options));
}

TEST(Corollary1, MinReplicationFindsAFactor) {
  const auto net = base_network();
  FepOptions options;
  options.mode = FailureMode::kCrash;
  const ErrorBudget budget{0.5, 0.1};
  const auto base_prof = profile_of(net, options);
  const std::size_t base_total =
      total_faults(greedy_max_distribution(base_prof, budget, options));
  const std::size_t target = base_total + 4;
  const std::size_t r =
      min_replication_for_tolerance(net, target, budget, options, 16);
  ASSERT_GT(r, 0u) << "no replication factor up to 16 reached the target";
  const auto replicated = replicate_neurons(net, r);
  const auto prof = profile_of(replicated, options);
  EXPECT_GE(total_faults(greedy_max_distribution(prof, budget, options)),
            target);
}

TEST(Corollary1, ReturnsZeroWhenUnreachable) {
  const auto net = base_network();
  FepOptions options;
  options.mode = FailureMode::kCrash;
  // Essentially no slack: no factor helps.
  const ErrorBudget budget{0.100000001, 0.1};
  EXPECT_EQ(min_replication_for_tolerance(net, 1000, budget, options, 3), 0u);
}

}  // namespace
}  // namespace wnf::theory
