// Property-based validation of the paper's theorems over randomized
// networks: for ANY sampled topology, weights, K, fault distribution and
// adversary within the model, the measured output error may never exceed
// the analytic bound. These are the load-bearing tests of the repository —
// a single violation falsifies the Fep implementation (or the theorem).
#include <gtest/gtest.h>

#include <cmath>

#include "core/tolerance.hpp"
#include "fault/adversary.hpp"
#include "fault/injector.hpp"
#include "nn/builder.hpp"
#include "quant/quantized_network.hpp"

namespace wnf {
namespace {

struct Shape {
  std::vector<std::size_t> widths;
  double k;
  double weight_scale;
};

class FepSoundness : public testing::TestWithParam<Shape> {
 protected:
  nn::FeedForwardNetwork sample_network(Rng& rng) const {
    const auto& shape = GetParam();
    return nn::NetworkBuilder(2)
        .activation(nn::ActivationKind::kSigmoid, shape.k)
        .hidden_layers(shape.widths)
        .init(nn::InitKind::kUniform, shape.weight_scale)
        .build(rng);
  }

  std::vector<std::size_t> sample_counts(const nn::FeedForwardNetwork& net,
                                         Rng& rng) const {
    std::vector<std::size_t> counts(net.layer_count());
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      counts[l - 1] = rng.uniform_index(net.layer_width(l) + 1);
    }
    return counts;
  }

  std::vector<double> sample_input(Rng& rng) const {
    return {rng.uniform(), rng.uniform()};
  }
};

TEST_P(FepSoundness, CrashErrorNeverExceedsFep) {
  Rng rng(1234);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  for (int round = 0; round < 15; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    for (int trial = 0; trial < 10; ++trial) {
      const auto counts = sample_counts(net, rng);
      const double bound =
          theory::forward_error_propagation(prof, counts, options);
      const auto plan = fault::random_crash_plan(net, counts, rng);
      const auto x = sample_input(rng);
      EXPECT_LE(injector.output_error(plan, x), bound + 1e-9)
          << "crash Fep violated";
    }
  }
}

TEST_P(FepSoundness, TopWeightCrashStillWithinFep) {
  Rng rng(987);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  for (int round = 0; round < 15; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    const auto counts = sample_counts(net, rng);
    const double bound =
        theory::forward_error_propagation(prof, counts, options);
    const auto plan = fault::top_weight_crash_plan(net, counts);
    for (int probe = 0; probe < 8; ++probe) {
      const auto x = sample_input(rng);
      EXPECT_LE(injector.output_error(plan, x), bound + 1e-9);
    }
  }
}

TEST_P(FepSoundness, ByzantinePerturbationNeverExceedsFep) {
  Rng rng(555);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kByzantine;
  options.capacity = 2.0;
  options.convention = theory::CapacityConvention::kPerturbationBound;
  for (int round = 0; round < 15; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    for (int trial = 0; trial < 8; ++trial) {
      const auto counts = sample_counts(net, rng);
      const double bound =
          theory::forward_error_propagation(prof, counts, options);
      const auto plan =
          fault::random_byzantine_plan(net, counts, options.capacity, rng);
      const auto x = sample_input(rng);
      EXPECT_LE(injector.output_error(plan, x), bound + 1e-9)
          << "Byzantine Fep violated";
    }
  }
}

TEST_P(FepSoundness, GradientDirectedAttackNeverExceedsFep) {
  // The strongest adversary must still sit under the bound — this is what
  // "worst case" means.
  Rng rng(777);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kByzantine;
  options.capacity = 1.0;
  for (int round = 0; round < 15; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    const auto counts = sample_counts(net, rng);
    const double bound =
        theory::forward_error_propagation(prof, counts, options);
    const auto x = sample_input(rng);
    const auto plan = fault::gradient_directed_byzantine_plan(
        net, counts, options.capacity, x);
    EXPECT_LE(injector.output_error(plan, x), bound + 1e-9);
  }
}

TEST_P(FepSoundness, SynapseFaultsNeverExceedTheorem4) {
  Rng rng(333);
  theory::FepOptions options;
  options.capacity = 1.5;
  for (int round = 0; round < 15; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    std::vector<std::size_t> counts(net.layer_count() + 1);
    for (std::size_t l = 0; l < counts.size(); ++l) {
      counts[l] = rng.uniform_index(3);
    }
    const double bound =
        theory::synapse_error_bound(prof, counts, options);
    const auto plan = fault::random_synapse_byzantine_plan(
        net, counts, options.capacity, rng);
    const auto x = sample_input(rng);
    EXPECT_LE(injector.output_error(plan, x), bound + 1e-9)
        << "Theorem 4 violated";
  }
}

TEST_P(FepSoundness, QuantizationNeverExceedsTheorem5) {
  Rng rng(111);
  theory::FepOptions options;
  for (int round = 0; round < 10; ++round) {
    const auto net = sample_network(rng);
    quant::PrecisionScheme scheme;
    scheme.bits.resize(net.layer_count());
    for (auto& bits : scheme.bits) bits = 2 + rng.uniform_index(10);
    const double bound =
        quant::quantization_error_bound(net, scheme, options);
    nn::Workspace ws;
    for (int probe = 0; probe < 10; ++probe) {
      const auto x = sample_input(rng);
      const double exact = net.evaluate(x, ws);
      const double quantized = quant::evaluate_quantized(net, x, scheme, ws);
      EXPECT_LE(std::fabs(exact - quantized), bound + 1e-12)
          << "Theorem 5 violated";
    }
  }
}

TEST_P(FepSoundness, Theorem3CertifiedDistributionsKeepEpsilon) {
  // End-to-end Definition 3: if Theorem 3 certifies (f_l) for (eps, eps'),
  // then |F(x) - Ffail(x)| <= eps for every x, where eps' is the measured
  // sup error of the trained... here: of the *constructed* approximation.
  // We use the network itself as its own target (eps' -> 0) plus slack.
  Rng rng(222);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  for (int round = 0; round < 10; ++round) {
    const auto net = sample_network(rng);
    const auto prof = theory::profile_of(net, options);
    // Treat F = Fneu (epsilon' ~ 0), so tolerated distributions must keep
    // |Fneu - Ffail| <= eps = slack.
    const theory::ErrorBudget budget{0.25 + rng.uniform(), 1e-9};
    const auto greedy =
        theory::greedy_max_distribution(prof, budget, options);
    if (theory::total_faults(greedy) == 0) continue;
    ASSERT_TRUE(theory::theorem3_tolerates(prof, greedy, budget, options));
    fault::Injector injector(net);
    const auto plan = fault::random_crash_plan(net, greedy, rng);
    for (int probe = 0; probe < 10; ++probe) {
      const auto x = sample_input(rng);
      EXPECT_LE(injector.output_error(plan, x), budget.epsilon + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FepSoundness,
    testing::Values(Shape{{6}, 0.25, 1.0}, Shape{{10}, 1.0, 0.5},
                    Shape{{5, 5}, 1.0, 0.8}, Shape{{8, 6}, 2.0, 0.3},
                    Shape{{4, 4, 4}, 0.5, 1.0}, Shape{{6, 5, 4}, 4.0, 0.2},
                    Shape{{12, 3}, 1.5, 0.6}, Shape{{3, 12}, 0.75, 0.9}));

TEST(FepTightness, ChainNetworkApproachesBoundInLinearRegime) {
  // Engineered tightness witness: a 1-wide chain with hard-sigmoid
  // activations biased to the exact centre of their linear band. A
  // perturbation of size c at layer 1 propagates as c * K^(L-1) * prod w —
  // exactly Fep with C = c. The measured/bound ratio must approach 1.
  const double k = 0.5;
  const double w = 0.9;
  const std::size_t depth = 3;
  std::vector<nn::DenseLayer> layers;
  std::size_t prev = 1;
  for (std::size_t l = 0; l < depth; ++l) {
    nn::DenseLayer layer(1, prev);
    layer.weights()(0, 0) = w;
    layer.bias()[0] = l == 0 ? 0.0 : -w * 0.5;  // centre the band at y=0.5
    layers.push_back(std::move(layer));
    prev = 1;
  }
  nn::FeedForwardNetwork net(
      1, std::move(layers), {w}, 0.0,
      nn::Activation(nn::ActivationKind::kHardSigmoid, k));

  const double c = 0.01;  // small enough to stay inside the linear band
  theory::FepOptions options;
  options.mode = theory::FailureMode::kByzantine;
  options.capacity = c;
  options.weight_convention = nn::WeightMaxConvention::kExcludeBias;
  const auto prof = theory::profile_of(net, options);
  const std::vector<std::size_t> faults{1, 0, 0};
  const double bound =
      theory::forward_error_propagation(prof, faults, options);

  fault::FaultPlan plan;
  plan.neurons = {{1, 0, fault::NeuronFaultKind::kByzantine, c}};
  fault::Injector injector(net);
  const std::vector<double> x{0.5};
  const double measured = injector.output_error(plan, x);
  EXPECT_LE(measured, bound + 1e-12);
  EXPECT_GT(measured / bound, 0.999) << "bound not tight on the witness";
}

TEST(FepTightness, Theorem1WorstCaseIsAchievable) {
  // Single layer, all output weights equal to w_m, input pushing every
  // activation towards 1: crashing f neurons removes ~f * w_m exactly.
  const std::size_t n = 10;
  const double w = 0.05;
  nn::DenseLayer layer(n, 1);
  for (std::size_t j = 0; j < n; ++j) {
    layer.weights()(j, 0) = 0.0;
    layer.bias()[j] = 12.0;  // saturate: y ~ 1
  }
  nn::FeedForwardNetwork net(1, {layer}, std::vector<double>(n, w), 0.0,
                             nn::Activation(nn::ActivationKind::kSigmoid, 1.0));
  fault::Injector injector(net);
  const std::vector<double> x{0.5};
  for (std::size_t f = 1; f <= 4; ++f) {
    fault::FaultPlan plan;
    for (std::size_t j = 0; j < f; ++j) {
      plan.neurons.push_back({1, j, fault::NeuronFaultKind::kCrash, 0.0});
    }
    const double measured = injector.output_error(plan, x);
    EXPECT_NEAR(measured, static_cast<double>(f) * w, 1e-6);
  }
}

TEST(Lemma1Property, UnboundedByzantineBreaksAnyEpsilon) {
  Rng rng(444);
  const auto net = nn::NetworkBuilder(2).hidden(8).build(rng);
  const std::vector<double> x{0.5, 0.5};
  const auto trace = net.forward_trace(x);
  // Pick any top-layer neuron with a nonzero output weight.
  std::size_t victim = 0;
  while (std::fabs(net.output_weights()[victim]) < 1e-6) ++victim;
  const double epsilon = 10.0;  // even a huge budget falls
  const double v = theory::lemma1_breaking_value(
      trace.output, trace.activations[1][victim],
      net.output_weights()[victim], epsilon);
  fault::FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  plan.neurons = {{1, victim, fault::NeuronFaultKind::kByzantine, v}};
  fault::Injector injector(net);
  EXPECT_GT(injector.output_error(plan, x), epsilon);
}

}  // namespace
}  // namespace wnf
