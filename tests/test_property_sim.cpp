// Property suite for the distributed substrate: over randomized topologies,
// latencies and MIXED fault plans (crash + Byzantine + stuck-at neurons,
// crash + Byzantine synapses), the message-passing simulator and the
// matrix-path Injector must agree exactly, the batched gemm path must match
// the per-sample path, and the conv-aware bound must stay sound on conv
// topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "dist/sim.hpp"
#include "fault/adversary.hpp"
#include "fault/injector.hpp"
#include "nn/batch.hpp"
#include "nn/builder.hpp"
#include "nn/conv.hpp"
#include "nn/loss.hpp"

namespace wnf {
namespace {

nn::FeedForwardNetwork random_net(Rng& rng) {
  const std::size_t depth = 1 + rng.uniform_index(3);
  nn::NetworkBuilder builder(2);
  builder.activation(nn::ActivationKind::kSigmoid,
                     0.25 * std::pow(2.0, double(rng.uniform_index(5))));
  for (std::size_t l = 0; l < depth; ++l) {
    builder.hidden(3 + rng.uniform_index(8));
  }
  builder.init(nn::InitKind::kUniform, rng.uniform(0.2, 1.2));
  return builder.build(rng);
}

/// A random plan mixing every fault species the model supports, using the
/// transmitted-value convention (the one the simulator executes natively).
fault::FaultPlan random_mixed_plan(const nn::FeedForwardNetwork& net,
                                   Rng& rng) {
  fault::FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    const std::size_t width = net.layer_width(l);
    for (std::size_t victim : rng.sample_indices(width, rng.uniform_index(
                                                            width / 2 + 1))) {
      const auto kind = static_cast<fault::NeuronFaultKind>(
          rng.uniform_index(3));
      double value = 0.0;
      if (kind == fault::NeuronFaultKind::kByzantine) {
        value = rng.uniform(-2.0, 2.0);
      } else if (kind == fault::NeuronFaultKind::kStuckAt) {
        value = rng.uniform();
      }
      plan.neurons.push_back({l, victim, kind, value});
    }
  }
  // A couple of synapse faults, including possibly into the output set.
  // One fault per edge (a synapse is crashed OR Byzantine, never both —
  // validate_plan enforces this).
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> edges;
  for (int s = 0; s < 2; ++s) {
    const std::size_t l = 1 + rng.uniform_index(net.layer_count() + 1);
    const std::size_t receivers =
        l <= net.layer_count() ? net.layer_width(l) : 1;
    const std::size_t senders = l <= net.layer_count()
                                    ? net.layer(l).in_size()
                                    : net.output_weights().size();
    const std::size_t to = rng.uniform_index(receivers);
    const std::size_t from = rng.uniform_index(senders);
    if (!edges.emplace(l, to, from).second) continue;
    const auto kind =
        rng.bernoulli(0.5) ? fault::SynapseFaultKind::kCrash
                           : fault::SynapseFaultKind::kByzantine;
    plan.synapses.push_back({l, to, from, kind,
                             kind == fault::SynapseFaultKind::kByzantine
                                 ? rng.uniform(-1.0, 1.0)
                                 : 0.0});
  }
  fault::validate_plan(plan, net);
  return plan;
}

TEST(SimEquivalence, MixedFaultPlansMatchInjectorExactly) {
  Rng rng(20240611);
  for (int round = 0; round < 60; ++round) {
    const auto net = random_net(rng);
    auto plan = random_mixed_plan(net, rng);
    // The simulator clamps Byzantine *transmitted* values at capacity;
    // use a roomy channel so both paths see the same values.
    dist::SimConfig config;
    config.capacity = 10.0;
    dist::NetworkSimulator sim(net, config);
    sim.apply_faults(plan);
    fault::Injector injector(net);
    for (int probe = 0; probe < 4; ++probe) {
      std::vector<double> x{rng.uniform(), rng.uniform()};
      EXPECT_NEAR(sim.evaluate(x).output, injector.damaged(plan, x), 1e-11)
          << "divergence at round " << round;
    }
  }
}

TEST(SimEquivalence, NominalAgreesWithBatchedAndPerSamplePaths) {
  Rng rng(777);
  for (int round = 0; round < 25; ++round) {
    const auto net = random_net(rng);
    dist::NetworkSimulator sim(net, dist::SimConfig{});
    std::vector<std::vector<double>> inputs;
    for (int n = 0; n < 8; ++n) {
      inputs.push_back({rng.uniform(), rng.uniform()});
    }
    const auto batched = nn::evaluate_batch(net, inputs);
    nn::Workspace ws;
    for (std::size_t n = 0; n < inputs.size(); ++n) {
      const double per_sample = net.evaluate(inputs[n], ws);
      EXPECT_NEAR(batched[n], per_sample, 1e-11);
      EXPECT_NEAR(sim.evaluate(inputs[n]).output, per_sample, 1e-11);
    }
  }
}

TEST(BatchEval, LossEstimatorsMatchScalarPath) {
  Rng rng(31);
  const auto net = random_net(rng);
  const auto target = data::make_sine_ridge(2);
  const auto dataset = data::sample_uniform(target, 64, rng);
  EXPECT_NEAR(nn::mse_batch(net, dataset), nn::mse(net, dataset), 1e-11);
  EXPECT_NEAR(nn::sup_error_batch(net, dataset), nn::sup_error(net, dataset),
              1e-11);
}

TEST(BatchEval, EmptyInputGivesEmptyOutput) {
  Rng rng(37);
  const auto net = random_net(rng);
  EXPECT_TRUE(nn::evaluate_batch(net, {}).empty());
}

TEST(ConvProperty, ConvAwareBoundSoundOnRandomConvTopologies) {
  // Random dense->conv stacks with random kernels: the receptive-field cap
  // must never fall below the measured crash error.
  Rng rng(909);
  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  options.use_receptive_field = true;
  for (int round = 0; round < 30; ++round) {
    const std::size_t features = 6 + rng.uniform_index(8);
    const std::size_t kernel_size = 2 + rng.uniform_index(
                                            std::min<std::size_t>(3, features - 1));
    nn::DenseLayer dense(features, 2);
    nn::initialize(dense, nn::InitKind::kUniform, rng.uniform(0.2, 0.8), rng);
    nn::Conv1DSpec spec{features, kernel_size, 1};
    std::vector<double> kernel(kernel_size);
    for (double& v : kernel) v = rng.uniform(-0.6, 0.6);
    auto conv = nn::make_conv1d(spec, kernel, rng.uniform(-0.2, 0.2));
    std::vector<nn::DenseLayer> layers;
    layers.push_back(std::move(dense));
    layers.push_back(std::move(conv));
    std::vector<double> out(spec.out_size());
    nn::initialize({out.data(), out.size()}, nn::InitKind::kUniform,
                   rng.uniform(0.2, 0.8), rng);
    const nn::FeedForwardNetwork net(
        2, std::move(layers), std::move(out), 0.0,
        nn::Activation(nn::ActivationKind::kSigmoid, rng.uniform(0.5, 2.0)));

    const auto prof = theory::profile_of(net, options);
    fault::Injector injector(net);
    std::vector<std::size_t> counts{1 + rng.uniform_index(features - 1), 0};
    const double bound =
        theory::forward_error_propagation(prof, counts, options);
    const auto plan = fault::random_crash_plan(net, counts, rng);
    for (int probe = 0; probe < 4; ++probe) {
      std::vector<double> x{rng.uniform(), rng.uniform()};
      EXPECT_LE(injector.output_error(plan, x), bound + 1e-9)
          << "conv-aware bound violated at round " << round;
    }
  }
}

}  // namespace
}  // namespace wnf
