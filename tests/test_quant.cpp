// Quantisation tests: fixed-point grids, Theorem-5 lambdas, quantised
// evaluation, weight quantisation, memory accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/builder.hpp"
#include "quant/memory_model.hpp"
#include "quant/quantized_network.hpp"

namespace wnf::quant {
namespace {

TEST(FixedPoint, SnapsToGrid) {
  const FixedPoint q(3, Rounding::kNearest);  // grid step 1/8
  EXPECT_DOUBLE_EQ(q.quantize(0.5), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(0.51), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(0.57), 0.625);
  EXPECT_DOUBLE_EQ(q.quantize(-0.3), -0.25);
}

TEST(FixedPoint, TruncationRoundsTowardZero) {
  const FixedPoint q(2, Rounding::kTruncate);  // grid step 1/4
  EXPECT_DOUBLE_EQ(q.quantize(0.74), 0.5);
  EXPECT_DOUBLE_EQ(q.quantize(-0.74), -0.5);
}

TEST(FixedPoint, MaxErrorBySemantics) {
  EXPECT_DOUBLE_EQ(FixedPoint(4, Rounding::kNearest).max_error(), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(FixedPoint(4, Rounding::kTruncate).max_error(), 1.0 / 16.0);
}

TEST(FixedPoint, ErrorNeverExceedsMaxError) {
  for (std::size_t bits : {1u, 3u, 8u, 16u}) {
    for (auto rounding : {Rounding::kNearest, Rounding::kTruncate}) {
      const FixedPoint q(bits, rounding);
      for (double v = -1.0; v <= 1.0; v += 0.00113) {
        EXPECT_LE(std::fabs(q.quantize(v) - v), q.max_error() + 1e-15);
      }
    }
  }
}

TEST(FixedPoint, IdempotentOnGridPoints) {
  const FixedPoint q(5, Rounding::kNearest);
  for (double v = -1.0; v <= 1.0; v += 0.173) {
    const double once = q.quantize(v);
    EXPECT_DOUBLE_EQ(q.quantize(once), once);
  }
}

TEST(PrecisionScheme, LambdasMatchBitWidths) {
  PrecisionScheme scheme;
  scheme.bits = {3, 5};
  const auto lambdas = scheme.lambdas();
  ASSERT_EQ(lambdas.size(), 2u);
  EXPECT_DOUBLE_EQ(lambdas[0], 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(lambdas[1], 1.0 / 64.0);
}

TEST(QuantizedEval, HighPrecisionConvergesToExact) {
  Rng rng(5);
  const auto net = nn::NetworkBuilder(2).hidden(6).hidden(5).build(rng);
  PrecisionScheme scheme;
  scheme.bits = {40, 40};
  nn::Workspace ws;
  const std::vector<double> x{0.3, 0.8};
  EXPECT_NEAR(evaluate_quantized(net, x, scheme, ws), net.evaluate(x, ws),
              1e-9);
}

TEST(QuantizedEval, DegradationShrinksWithBits) {
  Rng rng(7);
  const auto net = nn::NetworkBuilder(2).hidden(8).hidden(8).build(rng);
  nn::Workspace ws;
  Rng probe_rng(9);
  double previous = 1e9;
  for (std::size_t bits : {2u, 4u, 8u, 12u}) {
    PrecisionScheme scheme;
    scheme.bits = {bits, bits};
    double worst = 0.0;
    for (int n = 0; n < 64; ++n) {
      const std::vector<double> x{probe_rng.uniform(), probe_rng.uniform()};
      worst = std::max(worst, std::fabs(net.evaluate(x, ws) -
                                        evaluate_quantized(net, x, scheme, ws)));
    }
    EXPECT_LE(worst, previous + 1e-12);
    previous = worst;
  }
}

TEST(QuantizedEval, BoundMatchesTheorem5Formula) {
  Rng rng(11);
  const auto net = nn::NetworkBuilder(2)
                       .activation(nn::ActivationKind::kSigmoid, 1.5)
                       .hidden(3)
                       .hidden(4)
                       .build(rng);
  PrecisionScheme scheme;
  scheme.bits = {6, 9};
  theory::FepOptions options;
  const auto prof = theory::profile_of(net, options);
  const double expected = theory::precision_error_bound(
      prof, scheme.lambdas(), options);
  EXPECT_DOUBLE_EQ(quantization_error_bound(net, scheme, options), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(QuantizeWeights, SnapsAllParameters) {
  Rng rng(13);
  const auto net = nn::NetworkBuilder(2).hidden(4).build(rng);
  const auto quantized = quantize_weights(net, 4);
  const FixedPoint q(4, Rounding::kNearest);
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    for (double w : quantized.layer(l).weights().flat()) {
      EXPECT_DOUBLE_EQ(w, q.quantize(w));
    }
  }
  for (double w : quantized.output_weights()) {
    EXPECT_DOUBLE_EQ(w, q.quantize(w));
  }
  // Weight error bounded by the grid step.
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    EXPECT_TRUE(quantized.layer(l).weights().approx_equal(
        net.layer(l).weights(), q.max_error() + 1e-15));
  }
}

TEST(QuantizeWeights, PreservesReceptiveField) {
  Rng rng(17);
  auto net = nn::NetworkBuilder(6).hidden(4).build(rng);
  net.layer(1).set_receptive_field(2);
  EXPECT_EQ(quantize_weights(net, 8).layer(1).receptive_field(), 2u);
}

TEST(Memory, FootprintArithmetic) {
  Rng rng(19);
  const auto net = nn::NetworkBuilder(2).hidden(4).hidden(3).build(rng);
  // synapses: 4*2+4 + 3*4+3 + 3+1 = 31.
  ASSERT_EQ(net.synapse_count(), 31u);
  const auto fp = memory_footprint(net, 8, {16, 16});
  EXPECT_EQ(fp.weight_bits_total, 31u * 8u);
  // Peak live: max(input(2)*16 + layer1(4)*16, layer1(4)*16 + layer2(3)*16).
  EXPECT_EQ(fp.activation_bits_peak, 16u * 7u);
  EXPECT_EQ(fp.total_bits(), 31u * 8u + 112u);
}

TEST(Memory, BaselineIs64Bit) {
  Rng rng(23);
  const auto net = nn::NetworkBuilder(2).hidden(4).build(rng);
  const auto fp = baseline_footprint(net);
  EXPECT_EQ(fp.weight_bits_total, net.synapse_count() * 64u);
}

TEST(Memory, ReducedPrecisionSavesMemory) {
  Rng rng(29);
  const auto net = nn::NetworkBuilder(4).hidden(32).hidden(32).build(rng);
  const auto base = baseline_footprint(net);
  const auto reduced = memory_footprint(net, 8, {8, 8});
  EXPECT_LT(reduced.total_bits(), base.total_bits() / 7);
  EXPECT_GT(reduced.total_kib(), 0.0);
}

}  // namespace
}  // namespace wnf::quant
