// Reliability-layer tests: exact binomial tails, union-bound violation
// probabilities, certificate mission math, and cross-validation against
// Monte-Carlo fault sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "core/reliability.hpp"
#include "nn/builder.hpp"
#include "util/rng.hpp"

namespace wnf::theory {
namespace {

TEST(BinomialTail, HandComputedCases) {
  // Bin(2, 0.5): P[X > 0] = 0.75, P[X > 1] = 0.25, P[X > 2] = 0.
  EXPECT_NEAR(binomial_tail_above(2, 0.5, 0), 0.75, 1e-12);
  EXPECT_NEAR(binomial_tail_above(2, 0.5, 1), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(binomial_tail_above(2, 0.5, 2), 0.0);
}

TEST(BinomialTail, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_tail_above(10, 0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_above(10, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_above(10, 0.3, 10), 0.0);
}

TEST(BinomialTail, MatchesDirectSummation) {
  // Cross-check the log-space recurrence against naive pow-based pmf.
  const std::size_t n = 12;
  const double p = 0.17;
  for (std::size_t k = 0; k < n; ++k) {
    double tail = 0.0;
    for (std::size_t i = k + 1; i <= n; ++i) {
      double c = 1.0;
      for (std::size_t j = 1; j <= i; ++j) {
        c = c * static_cast<double>(n - i + j) / static_cast<double>(j);
      }
      tail += c * std::pow(p, double(i)) * std::pow(1.0 - p, double(n - i));
    }
    EXPECT_NEAR(binomial_tail_above(n, p, k), tail, 1e-10);
  }
}

TEST(BinomialTail, MonotoneInPAndAntitoneInK) {
  double prev = 0.0;
  for (double p : {0.01, 0.05, 0.1, 0.3, 0.6}) {
    const double tail = binomial_tail_above(20, p, 3);
    EXPECT_GE(tail, prev);
    prev = tail;
  }
  prev = 1.0;
  for (std::size_t k = 0; k <= 20; ++k) {
    const double tail = binomial_tail_above(20, 0.2, k);
    EXPECT_LE(tail, prev);
    prev = tail;
  }
}

TEST(ViolationProbability, UnionBoundDominatesMonteCarlo) {
  const std::vector<std::size_t> widths{12, 10, 8};
  const std::vector<std::size_t> faults{2, 1, 1};
  const double p = 0.08;
  const double analytic = violation_probability(widths, faults, p);

  Rng rng(7);
  const int trials = 40000;
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    bool violated = false;
    for (std::size_t l = 0; l < widths.size(); ++l) {
      std::size_t failed = 0;
      for (std::size_t j = 0; j < widths[l]; ++j) failed += rng.bernoulli(p);
      violated = violated || failed > faults[l];
    }
    violations += violated;
  }
  const double empirical = double(violations) / trials;
  EXPECT_LE(empirical, analytic + 0.01);           // union bound is an upper bound
  EXPECT_GE(analytic, empirical * 0.9 - 0.01);     // but not absurdly loose here
}

TEST(ViolationProbability, ZeroFaultBudgetIsFragile) {
  // With f = 0 everywhere, any failure violates.
  const std::vector<std::size_t> widths{10};
  const std::vector<std::size_t> faults{0};
  EXPECT_NEAR(violation_probability(widths, faults, 0.1),
              1.0 - std::pow(0.9, 10.0), 1e-12);
}

class CertificateReliability : public testing::Test {
 protected:
  static RobustnessCertificate make_cert() {
    Rng rng(5);
    const auto net = nn::NetworkBuilder(2)
                         .activation(nn::ActivationKind::kSigmoid, 1.0)
                         .hidden(16)
                         .hidden(12)
                         .init(nn::InitKind::kScaledUniform, 0.5)
                         .build(rng);
    FepOptions options;
    options.mode = FailureMode::kCrash;
    options.weight_convention = nn::WeightMaxConvention::kExcludeBias;
    // Wide budget so the greedy distribution is non-trivial.
    const auto prof = profile_of(net, options);
    std::vector<std::size_t> one{0, 1};
    const double cheapest =
        forward_error_propagation(prof, one, options);
    return certify(net, {1e-9 + 4.0 * cheapest, 1e-9}, options);
  }
};

TEST_F(CertificateReliability, ViolationDecreasesWithFailureRate) {
  const auto cert = make_cert();
  ASSERT_GT(total_faults(cert.greedy_distribution), 0u);
  double prev = 1.1;
  for (double p : {0.2, 0.1, 0.05, 0.01, 0.001}) {
    const double violation = certificate_violation_probability(cert, p);
    EXPECT_LE(violation, prev);
    prev = violation;
  }
  EXPECT_LT(certificate_violation_probability(cert, 1e-6), 1e-3);
}

TEST_F(CertificateReliability, ReliabilityAllocationBeatsMaxTotal) {
  const auto cert = make_cert();
  const double p = 0.02;
  const auto reliability_dist = max_reliability_distribution(
      cert.network, cert.budget, cert.options, p);
  // Same Theorem-3 gate...
  EXPECT_TRUE(theorem3_tolerates(cert.network, reliability_dist, cert.budget,
                                 cert.options));
  // ...but never a worse violation probability than the max-total greedy.
  EXPECT_LE(violation_probability(cert.network.widths, reliability_dist, p),
            violation_probability(cert.network.widths,
                                  cert.greedy_distribution, p) +
                1e-12);
}

TEST_F(CertificateReliability, ReliabilityAllocationSpreadsBudget) {
  const auto cert = make_cert();
  const auto dist = max_reliability_distribution(cert.network, cert.budget,
                                                 cert.options, 0.02);
  // Every layer should get at least one fault of margin whenever the gate
  // allows it — a zero-margin layer dominates the union bound.
  const std::vector<std::size_t> probe{1, 1};
  if (theorem3_tolerates(cert.network, probe, cert.budget, cert.options)) {
    for (std::size_t f : dist) EXPECT_GE(f, 1u);
  }
}

TEST_F(CertificateReliability, MaxFailureRateInvertsTheBound) {
  const auto cert = make_cert();
  const double target = 1e-3;
  const double p_star = max_failure_rate(cert, target);
  ASSERT_GT(p_star, 0.0);
  EXPECT_LE(certificate_violation_probability(cert, p_star), target + 1e-6);
  // Just above p*, the target is exceeded.
  EXPECT_GT(certificate_violation_probability(cert, p_star * 1.1 + 1e-6),
            target);
}

}  // namespace
}  // namespace wnf::theory
