// nn::serialize property tests. The transport wire protocol ships whole
// networks through this format (transport::BindMsg), so its round-trip
// guarantee is now a load-bearing wall: every weight, bias, receptive
// field, and activation parameter must survive save -> load bit for bit,
// for any architecture, and malformed text must be rejected, not guessed
// at.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "nn/builder.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "nn/topology.hpp"
#include "util/rng.hpp"

namespace wnf::nn {
namespace {

/// A random architecture: depth, widths, receptive fields, activation
/// kind and K, and every parameter drawn from `rng`.
FeedForwardNetwork random_network(Rng& rng) {
  const std::size_t input_dim = 1 + rng.uniform_index(5);
  const std::size_t depth = 1 + rng.uniform_index(4);
  const ActivationKind kind = static_cast<ActivationKind>(
      rng.uniform_index(3));  // kSigmoid, kTanh01, kHardSigmoid
  const double k = rng.uniform(0.1, 3.0);

  std::vector<DenseLayer> hidden;
  std::size_t prev = input_dim;
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t width = 1 + rng.uniform_index(9);
    DenseLayer layer(width, prev);
    for (double& w : layer.weights().flat()) w = rng.uniform(-2.0, 2.0);
    for (double& b : layer.bias()) b = rng.uniform(-1.0, 1.0);
    layer.set_receptive_field(1 + rng.uniform_index(prev));
    hidden.push_back(std::move(layer));
    prev = width;
  }
  std::vector<double> output_weights(prev);
  for (double& w : output_weights) w = rng.uniform(-2.0, 2.0);
  return FeedForwardNetwork(input_dim, std::move(hidden),
                            std::move(output_weights),
                            rng.uniform(-1.0, 1.0), Activation(kind, k));
}

TEST(Serialize, RoundTripsRandomNetworksBitForBit) {
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 60; ++trial) {
    const auto net = random_network(rng);
    std::stringstream text;
    save_network(net, text);
    const auto loaded = load_network(text);
    ASSERT_TRUE(loaded.has_value()) << "trial " << trial;

    ASSERT_EQ(loaded->input_dim(), net.input_dim());
    ASSERT_EQ(loaded->layer_count(), net.layer_count());
    EXPECT_EQ(loaded->activation().kind(), net.activation().kind());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->activation().lipschitz()),
              std::bit_cast<std::uint64_t>(net.activation().lipschitz()));
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      const auto& a = net.layer(l);
      const auto& b = loaded->layer(l);
      ASSERT_EQ(b.out_size(), a.out_size());
      ASSERT_EQ(b.in_size(), a.in_size());
      EXPECT_EQ(b.receptive_field(), a.receptive_field());
      for (std::size_t j = 0; j < a.out_size(); ++j) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(b.bias()[j]),
                  std::bit_cast<std::uint64_t>(a.bias()[j]));
        for (std::size_t i = 0; i < a.in_size(); ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(b.weights()(j, i)),
                    std::bit_cast<std::uint64_t>(a.weights()(j, i)))
              << "trial " << trial << " layer " << l;
        }
      }
    }
    ASSERT_EQ(loaded->output_weights().size(), net.output_weights().size());
    for (std::size_t i = 0; i < net.output_weights().size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->output_weights()[i]),
                std::bit_cast<std::uint64_t>(net.output_weights()[i]));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->output_bias()),
              std::bit_cast<std::uint64_t>(net.output_bias()));

    // The semantic consequence the transport relies on: the loaded network
    // is the same function, bit for bit.
    for (int probe = 0; probe < 4; ++probe) {
      std::vector<double> x(net.input_dim());
      for (double& v : x) v = rng.uniform(-1.0, 1.0);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->evaluate(x)),
                std::bit_cast<std::uint64_t>(net.evaluate(x)));
    }
  }
}

TEST(Serialize, RejectsMalformedText) {
  Rng rng(99);
  const auto net = random_network(rng);
  std::stringstream text;
  save_network(net, text);
  const std::string good = text.str();

  // Whole-prefix truncations at every line boundary must all fail; the
  // only accepted text is the complete document.
  for (std::size_t at = good.find('\n'); at != std::string::npos;
       at = good.find('\n', at + 1)) {
    if (at + 1 == good.size()) continue;  // the full document
    std::istringstream in(good.substr(0, at + 1));
    EXPECT_FALSE(load_network(in).has_value())
        << "accepted a " << (at + 1) << "-byte prefix";
  }

  const auto rejects = [&](std::string broken) {
    std::istringstream in(broken);
    return !load_network(in).has_value();
  };
  EXPECT_TRUE(rejects("wnf-network v2\n"));           // truncated document
  EXPECT_TRUE(rejects("wnf-network v3\n"));           // unknown version
  EXPECT_TRUE(rejects("not-a-network v1\n"));         // wrong magic token
  std::string bad_kind = good;
  bad_kind.replace(bad_kind.find("activation "), 11, "activation bogus__");
  EXPECT_TRUE(rejects(bad_kind));
  std::string no_end = good;
  no_end.replace(no_end.rfind("end"), 3, "dne");      // corrupt terminator
  EXPECT_TRUE(rejects(no_end));
  std::string bad_number = good;
  bad_number.replace(bad_number.find("layers "), 8, "layers x");
  EXPECT_TRUE(rejects(bad_number));
}

/// random_network with a sparse topology (and sometimes per-edge channel
/// capacities) attached to a random subset of its layers.
FeedForwardNetwork random_sparse_network(Rng& rng, bool& any_sparse) {
  auto net = random_network(rng);
  any_sparse = false;
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    auto& layer = net.layer(l);
    if (!rng.bernoulli(0.7)) continue;
    auto topo = LayerTopology::random_sparse(layer.out_size(),
                                             layer.in_size(), 0.5, rng);
    if (rng.bernoulli(0.5)) {
      std::vector<double> caps(topo.edge_count());
      for (double& cap : caps) cap = rng.uniform(0.5, 2.0);
      topo.set_edge_capacities(std::move(caps));
    }
    layer.set_topology(std::move(topo));
    if (layer.is_sparse()) any_sparse = true;
  }
  return net;
}

TEST(SerializeV2, RoundTripsSparseTopologiesBitForBit) {
  Rng rng(0x70F0);
  int sparse_docs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    bool any_sparse = false;
    const auto net = random_sparse_network(rng, any_sparse);
    std::stringstream text;
    save_network(net, text);
    // The v2 header appears exactly when some layer carries real structure;
    // dense-only nets keep emitting v1 (old readers stay compatible).
    EXPECT_EQ(text.str().rfind(any_sparse ? "wnf-network v2\n"
                                          : "wnf-network v1\n", 0), 0u);
    sparse_docs += any_sparse ? 1 : 0;
    const auto loaded = load_network(text);
    ASSERT_TRUE(loaded.has_value()) << "trial " << trial;
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      const auto& a = net.layer(l);
      const auto& b = loaded->layer(l);
      ASSERT_EQ(b.is_sparse(), a.is_sparse()) << "trial " << trial;
      if (a.is_sparse()) {
        EXPECT_EQ(*b.topology(), *a.topology());  // structure AND capacities
      }
      EXPECT_EQ(b.receptive_field(), a.receptive_field());
      for (std::size_t j = 0; j < a.out_size(); ++j) {
        for (std::size_t i = 0; i < a.in_size(); ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(b.weights()(j, i)),
                    std::bit_cast<std::uint64_t>(a.weights()(j, i)));
        }
      }
    }
    for (int probe = 0; probe < 3; ++probe) {
      std::vector<double> x(net.input_dim());
      for (double& v : x) v = rng.uniform(-1.0, 1.0);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->evaluate(x)),
                std::bit_cast<std::uint64_t>(net.evaluate(x)));
    }
  }
  EXPECT_GT(sparse_docs, 10);  // the property test actually exercised v2
}

TEST(SerializeV2, RejectsMalformedAdjacency) {
  // A minimal well-formed v2 document, then one surgical corruption per
  // case. The loader must return nullopt — never abort on a contract.
  const std::string good =
      "wnf-network v2\n"
      "activation sigmoid 1\n"
      "input_dim 2\n"
      "layers 1\n"
      "layer 2 2 2\n"
      "adjacency sparse 3\n"
      "rowptr 0 2 3\n"
      "cols 0 1 1\n"
      "edgecaps 0\n"
      "1 0.5\n"
      "0 0.25\n"
      "0.125 -1\n"
      "output 2\n"
      "2 -0.5\n"
      "output_bias 0.75\n"
      "end\n";
  {
    std::istringstream in(good);
    const auto loaded = load_network(in);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_TRUE(loaded->layer(1).is_sparse());
    EXPECT_EQ(loaded->layer(1).edge_count(), 3u);
    // set_topology re-masks on load: the non-edge weight (1, 0) is zeroed.
    EXPECT_EQ(loaded->layer(1).weights()(1, 0), 0.0);
  }
  const auto rejects = [&](const std::string& from, const std::string& to) {
    std::string broken = good;
    const auto at = broken.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    broken.replace(at, from.size(), to);
    std::istringstream in(broken);
    EXPECT_FALSE(load_network(in).has_value())
        << "accepted: " << from << " -> " << to;
  };
  rejects("adjacency sparse 3", "adjacency sparse 0");   // nnz = 0
  rejects("adjacency sparse 3", "adjacency sparse 5");   // nnz > out*in
  rejects("adjacency sparse", "adjacency banana");       // unknown shape
  rejects("rowptr 0 2 3", "rowptr 1 2 3");               // must start at 0
  rejects("rowptr 0 2 3", "rowptr 0 2 4");               // must end at nnz
  rejects("rowptr 0 2 3", "rowptr 0 3 3");               // empty row 1
  rejects("rowptr 0 2 3", "rowptr 0 0 3");               // empty row 0
  rejects("cols 0 1 1", "cols 1 0 1");                   // unsorted row 0
  rejects("cols 0 1 1", "cols 0 0 1");                   // duplicate col
  rejects("cols 0 1 1", "cols 0 2 1");                   // col out of range
  rejects("edgecaps 0", "edgecaps 2");                   // count != nnz
  rejects("edgecaps 0", "edgecaps 3 1 -1 1");            // negative capacity
  rejects("edgecaps 0", "edgecaps 3 1 0 1");             // zero capacity
  rejects("edgecaps 0", "edgecaps 3 1 inf 1");           // non-finite capacity
  // A v1 header cannot carry an adjacency section: the weight parser sees
  // the token and fails.
  rejects("wnf-network v2", "wnf-network v1");
}

TEST(SerializeV1, DenseGoldenTextIsByteIdentical) {
  // Byte-for-byte pin of the v1 format on a hand-built network whose
  // parameters all print exactly. Any drift here breaks old readers and
  // the transport's Bind frames.
  std::vector<DenseLayer> hidden;
  DenseLayer layer(2, 2);
  layer.weights()(0, 0) = 0.5;
  layer.weights()(0, 1) = -0.25;
  layer.weights()(1, 0) = 1.0;
  layer.weights()(1, 1) = 0.0;
  layer.bias()[0] = 0.125;
  layer.bias()[1] = -1.0;
  hidden.push_back(std::move(layer));
  const FeedForwardNetwork net(2, std::move(hidden), {2.0, -0.5}, 0.75,
                               Activation(ActivationKind::kSigmoid, 0.25));
  std::stringstream text;
  save_network(net, text);
  EXPECT_EQ(text.str(),
            "wnf-network v1\n"
            "activation sigmoid 0.25\n"
            "input_dim 2\n"
            "layers 1\n"
            "layer 2 2 2\n"
            "0.5 -0.25\n"
            "1 0\n"
            "0.125 -1\n"
            "output 2\n"
            "2 -0.5\n"
            "output_bias 0.75\n"
            "end\n");
}

}  // namespace
}  // namespace wnf::nn
