// nn::serialize property tests. The transport wire protocol ships whole
// networks through this format (transport::BindMsg), so its round-trip
// guarantee is now a load-bearing wall: every weight, bias, receptive
// field, and activation parameter must survive save -> load bit for bit,
// for any architecture, and malformed text must be rejected, not guessed
// at.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>

#include "nn/builder.hpp"
#include "nn/layer.hpp"
#include "nn/network.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace wnf::nn {
namespace {

/// A random architecture: depth, widths, receptive fields, activation
/// kind and K, and every parameter drawn from `rng`.
FeedForwardNetwork random_network(Rng& rng) {
  const std::size_t input_dim = 1 + rng.uniform_index(5);
  const std::size_t depth = 1 + rng.uniform_index(4);
  const ActivationKind kind = static_cast<ActivationKind>(
      rng.uniform_index(3));  // kSigmoid, kTanh01, kHardSigmoid
  const double k = rng.uniform(0.1, 3.0);

  std::vector<DenseLayer> hidden;
  std::size_t prev = input_dim;
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t width = 1 + rng.uniform_index(9);
    DenseLayer layer(width, prev);
    for (double& w : layer.weights().flat()) w = rng.uniform(-2.0, 2.0);
    for (double& b : layer.bias()) b = rng.uniform(-1.0, 1.0);
    layer.set_receptive_field(1 + rng.uniform_index(prev));
    hidden.push_back(std::move(layer));
    prev = width;
  }
  std::vector<double> output_weights(prev);
  for (double& w : output_weights) w = rng.uniform(-2.0, 2.0);
  return FeedForwardNetwork(input_dim, std::move(hidden),
                            std::move(output_weights),
                            rng.uniform(-1.0, 1.0), Activation(kind, k));
}

TEST(Serialize, RoundTripsRandomNetworksBitForBit) {
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 60; ++trial) {
    const auto net = random_network(rng);
    std::stringstream text;
    save_network(net, text);
    const auto loaded = load_network(text);
    ASSERT_TRUE(loaded.has_value()) << "trial " << trial;

    ASSERT_EQ(loaded->input_dim(), net.input_dim());
    ASSERT_EQ(loaded->layer_count(), net.layer_count());
    EXPECT_EQ(loaded->activation().kind(), net.activation().kind());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->activation().lipschitz()),
              std::bit_cast<std::uint64_t>(net.activation().lipschitz()));
    for (std::size_t l = 1; l <= net.layer_count(); ++l) {
      const auto& a = net.layer(l);
      const auto& b = loaded->layer(l);
      ASSERT_EQ(b.out_size(), a.out_size());
      ASSERT_EQ(b.in_size(), a.in_size());
      EXPECT_EQ(b.receptive_field(), a.receptive_field());
      for (std::size_t j = 0; j < a.out_size(); ++j) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(b.bias()[j]),
                  std::bit_cast<std::uint64_t>(a.bias()[j]));
        for (std::size_t i = 0; i < a.in_size(); ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(b.weights()(j, i)),
                    std::bit_cast<std::uint64_t>(a.weights()(j, i)))
              << "trial " << trial << " layer " << l;
        }
      }
    }
    ASSERT_EQ(loaded->output_weights().size(), net.output_weights().size());
    for (std::size_t i = 0; i < net.output_weights().size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->output_weights()[i]),
                std::bit_cast<std::uint64_t>(net.output_weights()[i]));
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->output_bias()),
              std::bit_cast<std::uint64_t>(net.output_bias()));

    // The semantic consequence the transport relies on: the loaded network
    // is the same function, bit for bit.
    for (int probe = 0; probe < 4; ++probe) {
      std::vector<double> x(net.input_dim());
      for (double& v : x) v = rng.uniform(-1.0, 1.0);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->evaluate(x)),
                std::bit_cast<std::uint64_t>(net.evaluate(x)));
    }
  }
}

TEST(Serialize, RejectsMalformedText) {
  Rng rng(99);
  const auto net = random_network(rng);
  std::stringstream text;
  save_network(net, text);
  const std::string good = text.str();

  // Whole-prefix truncations at every line boundary must all fail; the
  // only accepted text is the complete document.
  for (std::size_t at = good.find('\n'); at != std::string::npos;
       at = good.find('\n', at + 1)) {
    if (at + 1 == good.size()) continue;  // the full document
    std::istringstream in(good.substr(0, at + 1));
    EXPECT_FALSE(load_network(in).has_value())
        << "accepted a " << (at + 1) << "-byte prefix";
  }

  const auto rejects = [&](std::string broken) {
    std::istringstream in(broken);
    return !load_network(in).has_value();
  };
  EXPECT_TRUE(rejects("wnf-network v2\n"));           // unknown version
  EXPECT_TRUE(rejects("not-a-network v1\n"));         // wrong magic token
  std::string bad_kind = good;
  bad_kind.replace(bad_kind.find("activation "), 11, "activation bogus__");
  EXPECT_TRUE(rejects(bad_kind));
  std::string no_end = good;
  no_end.replace(no_end.rfind("end"), 3, "dne");      // corrupt terminator
  EXPECT_TRUE(rejects(no_end));
  std::string bad_number = good;
  bad_number.replace(bad_number.find("layers "), 8, "layers x");
  EXPECT_TRUE(rejects(bad_number));
}

}  // namespace
}  // namespace wnf::nn
