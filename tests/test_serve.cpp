// Serving-runtime tests: replica-count invariance (the determinism
// contract), fault-timeline semantics over the request stream, equivalence
// with the sequential boosting engine, and the bounded-queue behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/boosting.hpp"
#include "fault/injector.hpp"
#include "nn/builder.hpp"
#include "serve/pool.hpp"
#include "serve/timeline.hpp"

namespace wnf::serve {
namespace {

nn::FeedForwardNetwork serve_net(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(3)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(7)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.5)
      .build(rng);
}

std::vector<std::vector<double>> serve_workload(std::size_t count,
                                                std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::vector<double>> workload(count);
  for (auto& x : workload) {
    x = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return workload;
}

dist::LatencyModel heavy_tail() {
  return {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
}

TEST(Timeline, SegmentsResolveWindowsByRequestId) {
  const auto net = serve_net();
  FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan byzantine;
  byzantine.neurons = {{2, 1, fault::NeuronFaultKind::kByzantine, 0.7}};
  timeline.add(5, 10, crash);
  timeline.add(8, 12, byzantine);  // overlaps [8, 10): plans merge
  timeline.finalize(net);

  EXPECT_TRUE(timeline.active_at(0).empty());
  EXPECT_TRUE(timeline.active_at(4).empty());
  EXPECT_EQ(timeline.active_at(5).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(8).neurons.size(), 2u);
  EXPECT_EQ(timeline.active_at(9).neurons.size(), 2u);
  EXPECT_EQ(timeline.active_at(10).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(11).neurons.size(), 1u);
  EXPECT_TRUE(timeline.active_at(12).empty());
  EXPECT_TRUE(timeline.active_at(1000000).empty());
  // Requests inside one window share a segment; a boundary starts a new one.
  EXPECT_EQ(timeline.segment_at(5), timeline.segment_at(7));
  EXPECT_NE(timeline.segment_at(7), timeline.segment_at(8));
}

TEST(Timeline, ForeverWindowNeverClears) {
  const auto net = serve_net();
  FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 0, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(3, FaultTimeline::kForever, crash);
  timeline.finalize(net);
  EXPECT_TRUE(timeline.active_at(2).empty());
  EXPECT_FALSE(timeline.active_at(3).empty());
  EXPECT_FALSE(timeline.active_at(~std::uint64_t{0} - 1).empty());
}

TEST(Timeline, ForeverWindowCombinesWithFiniteOnes) {
  // A kForever window plus a finite one on a distinct component: the merged
  // plan holds exactly while both are active, and the forever fault is
  // still present long after the finite one cleared.
  const auto net = serve_net();
  FaultTimeline timeline;
  fault::FaultPlan forever_crash;
  forever_crash.neurons = {{1, 0, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan burst;
  burst.neurons = {{2, 1, fault::NeuronFaultKind::kByzantine, 0.5}};
  timeline.add(4, FaultTimeline::kForever, forever_crash);
  timeline.add(6, 9, burst);
  timeline.finalize(net);

  EXPECT_TRUE(timeline.active_at(3).empty());
  EXPECT_EQ(timeline.active_at(4).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(6).neurons.size(), 2u);
  EXPECT_EQ(timeline.active_at(8).neurons.size(), 2u);
  EXPECT_EQ(timeline.active_at(9).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(FaultTimeline::kForever - 1).neurons.size(),
            1u);
  EXPECT_EQ(timeline.active_at(FaultTimeline::kForever - 1).neurons[0].layer,
            1u);
}

TEST(Timeline, AbuttingWindowsProduceDistinctSegments) {
  // end == next start means the first fault clears exactly when the second
  // arrives: no request sees both, and the boundary starts a new segment.
  const auto net = serve_net();
  FaultTimeline timeline;
  fault::FaultPlan first;
  first.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan second;
  second.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(2, 4, first);
  timeline.add(4, 6, second);
  timeline.finalize(net);

  EXPECT_NE(timeline.segment_at(3), timeline.segment_at(4));
  ASSERT_EQ(timeline.active_at(3).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(3).neurons[0].neuron, 2u);
  ASSERT_EQ(timeline.active_at(4).neurons.size(), 1u);
  EXPECT_EQ(timeline.active_at(4).neurons[0].neuron, 3u);
  EXPECT_TRUE(timeline.active_at(6).empty());
}

TEST(TimelineDeathTest, OverlappingWindowsOnSameComponentAbort) {
  // Overlapping windows must target distinct components; a scenario that
  // faults the same neuron twice in one segment is a bug and must fail
  // loudly at finalize, not mid-traffic.
  const auto net = serve_net();
  FaultTimeline timeline;
  fault::FaultPlan plan;
  plan.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(2, 6, plan);
  timeline.add(4, 8, plan);  // same neuron active twice on [4, 6)
  EXPECT_DEATH(timeline.finalize(net), "precondition");
}

TEST(Serve, OutputsMatchSequentialSimulator) {
  // One replica, no faults, no cut: the pool is exactly the sequential
  // simulator with per-request split latencies.
  const auto net = serve_net();
  const auto workload = serve_workload(20);

  ServeConfig config;
  config.replicas = 1;
  config.latency = heavy_tail();
  config.seed = 77;
  ReplicaPool pool(net, config);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto results = pool.drain();

  dist::NetworkSimulator reference(net, dist::SimConfig{});
  Rng root(77);
  const auto widths = net.layer_widths();
  for (std::size_t i = 0; i < workload.size(); ++i) {
    Rng request_rng = root.split();
    reference.set_latencies(
        config.latency.sample_layers(widths, request_rng));
    const auto expected = reference.evaluate(workload[i]);
    EXPECT_EQ(results[i].id, i);
    EXPECT_DOUBLE_EQ(results[i].output, expected.output);
    EXPECT_DOUBLE_EQ(results[i].completion_time, expected.completion_time);
  }
}

TEST(Serve, BitIdenticalAcrossWorkerCounts) {
  // The acceptance bar: 1, 2, and 8 replicas produce bit-identical
  // results for a fixed seed — under an active fault timeline and a
  // Corollary-2 cut, while requests land on arbitrary workers.
  const auto net = serve_net(13);
  const auto workload = serve_workload(40, 21);

  FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0},
                   {1, 5, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan byzantine;
  byzantine.neurons = {{2, 0, fault::NeuronFaultKind::kByzantine, 0.6}};
  timeline.add(10, 25, crash);
  timeline.add(30, 34, byzantine);

  std::vector<std::vector<RequestResult>> runs;
  for (const std::size_t replicas : {1u, 2u, 8u}) {
    ServeConfig config;
    config.replicas = replicas;
    config.latency = heavy_tail();
    config.straggler_cut = {2, 1};
    config.seed = 99;
    ReplicaPool pool(net, config);
    pool.set_timeline(timeline);
    ASSERT_EQ(pool.submit_batch(workload), workload.size());
    runs.push_back(pool.drain());
    EXPECT_EQ(pool.replica_count(), replicas);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].id, runs[0][i].id);
      EXPECT_DOUBLE_EQ(runs[r][i].output, runs[0][i].output);
      EXPECT_DOUBLE_EQ(runs[r][i].completion_time,
                       runs[0][i].completion_time);
      EXPECT_EQ(runs[r][i].resets_sent, runs[0][i].resets_sent);
    }
  }
}

TEST(Serve, TimelineAppliesAndClearsFaultsMidTraffic) {
  // Crash window [5, 10), Byzantine burst [8, 12): each request's output
  // must match the Injector under exactly the faults active at its id.
  // Transmitted-value convention so simulator and Injector agree
  // bit-for-bit even where the windows overlap.
  const auto net = serve_net();
  const std::vector<double> x{0.4, 0.7, 0.2};

  fault::FaultPlan crash;
  crash.convention = theory::CapacityConvention::kTransmittedValueBound;
  crash.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan byzantine;
  byzantine.convention = theory::CapacityConvention::kTransmittedValueBound;
  byzantine.neurons = {{2, 1, fault::NeuronFaultKind::kByzantine, 0.7}};
  FaultTimeline timeline;
  timeline.add(5, 10, crash);
  timeline.add(8, 12, byzantine);

  ServeConfig config;
  config.replicas = 2;
  ReplicaPool pool(net, config);
  pool.set_timeline(timeline);
  for (int n = 0; n < 15; ++n) ASSERT_TRUE(pool.submit(x));
  const auto results = pool.drain();

  fault::Injector injector(net);
  fault::FaultPlan both;
  both.convention = theory::CapacityConvention::kTransmittedValueBound;
  both.neurons = {crash.neurons[0], byzantine.neurons[0]};
  const double nominal = net.evaluate(x);
  for (const auto& result : results) {
    const std::uint64_t id = result.id;
    double expected = nominal;
    if (id >= 5 && id < 8) expected = injector.damaged(crash, x);
    if (id >= 8 && id < 10) expected = injector.damaged(both, x);
    if (id >= 10 && id < 12) expected = injector.damaged(byzantine, x);
    EXPECT_NEAR(result.output, expected, 1e-12) << "request " << id;
  }
}

TEST(Serve, EquivalenceWithSequentialRunBoosting) {
  // The serving pool under a cut is run_boosting's boosted lane: same
  // split tree, same latency draws, same wait counts — so outputs match
  // the sequential engine and the pool's mean completion time reproduces
  // the BoostingReport.
  const auto net = serve_net(13);
  const auto workload = serve_workload(24, 33);
  const std::vector<std::size_t> cut{2, 1};
  const std::uint64_t seed = 4242;

  ServeConfig config;
  config.replicas = 4;
  config.latency = heavy_tail();
  config.straggler_cut = cut;
  config.seed = seed;
  ReplicaPool pool(net, config);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto results = pool.drain();

  dist::NetworkSimulator boosted(net, dist::SimConfig{});
  const auto wait = dist::wait_counts_from_cut(net, cut);
  const auto widths = net.layer_widths();
  Rng root(seed);
  double total_completion = 0.0;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    Rng request_rng = root.split();
    boosted.set_latencies(
        config.latency.sample_layers(widths, request_rng));
    const auto expected =
        boosted.evaluate_boosted(workload[i], {wait.data(), wait.size()});
    EXPECT_DOUBLE_EQ(results[i].output, expected.output);
    EXPECT_DOUBLE_EQ(results[i].completion_time, expected.completion_time);
    total_completion += results[i].completion_time;
  }

  dist::BoostingConfig boost;
  boost.straggler_cut = cut;
  boost.latency = config.latency;
  boost.seed = seed;
  const auto report =
      dist::run_boosting(net, workload, boost, {0.9, 1e-6});
  EXPECT_NEAR(pool.report().completion.mean,
              total_completion / static_cast<double>(workload.size()), 1e-12);
  EXPECT_NEAR(pool.report().completion.mean, report.mean_boosted_time, 1e-12);
}

TEST(Serve, BoundedQueueShedsLoadWithoutPerturbingAcceptedRequests) {
  const auto net = serve_net();
  const auto workload = serve_workload(12);

  ServeConfig config;
  config.replicas = 2;
  config.queue_capacity = 8;
  config.latency = heavy_tail();
  config.seed = 5;
  ReplicaPool pool(net, config);
  EXPECT_EQ(pool.submit_batch(workload), 8u);
  EXPECT_EQ(pool.pending(), 8u);
  EXPECT_EQ(pool.report().rejected, 4u);
  EXPECT_EQ(pool.report().shed, 0u);  // in-queue rejection, not transport shed
  const auto first = pool.drain();
  ASSERT_EQ(first.size(), 8u);
  EXPECT_EQ(pool.pending(), 0u);

  // The queue frees up; ids keep counting from where acceptance stopped.
  EXPECT_TRUE(pool.submit(workload[8]));
  const auto second = pool.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 8u);

  // Shed load never consumed a split: an unbounded pool serving the same
  // first 9 requests produces bit-identical outputs.
  ServeConfig roomy = config;
  roomy.queue_capacity = 4096;
  ReplicaPool reference(net, roomy);
  std::vector<std::vector<double>> first_nine(workload.begin(),
                                              workload.begin() + 9);
  ASSERT_EQ(reference.submit_batch(first_nine), 9u);
  const auto expected = reference.drain();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(first[i].output, expected[i].output);
  }
  EXPECT_DOUBLE_EQ(second[0].output, expected[8].output);
}

TEST(Serve, ResultsIndependentOfBatching) {
  const auto net = serve_net();
  const auto workload = serve_workload(9, 55);

  ServeConfig config;
  config.replicas = 3;
  config.latency = heavy_tail();
  config.seed = 11;

  ReplicaPool whole(net, config);
  ASSERT_EQ(whole.submit_batch(workload), 9u);
  const auto all = whole.drain();

  ReplicaPool pieces(net, config);
  std::vector<RequestResult> stitched;
  std::size_t at = 0;
  for (const std::size_t batch : {4u, 2u, 3u}) {
    std::vector<std::vector<double>> slice(
        workload.begin() + static_cast<std::ptrdiff_t>(at),
        workload.begin() + static_cast<std::ptrdiff_t>(at + batch));
    ASSERT_EQ(pieces.submit_batch(slice), batch);
    const auto drained = pieces.drain();
    stitched.insert(stitched.end(), drained.begin(), drained.end());
    at += batch;
  }
  ASSERT_EQ(stitched.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(stitched[i].id, all[i].id);
    EXPECT_DOUBLE_EQ(stitched[i].output, all[i].output);
    EXPECT_DOUBLE_EQ(stitched[i].completion_time, all[i].completion_time);
  }
}

TEST(Serve, AsyncPollWaitBitIdenticalToDrain) {
  // The async pipeline primitives against the legacy drain, across 1/2/8
  // replicas under an active fault timeline: interleaving submit with
  // non-blocking poll() and finishing with wait() must deliver the same
  // results, bit for bit and in id order, as submitting everything and
  // draining synchronously.
  const auto net = serve_net(13);
  const auto workload = serve_workload(40, 21);

  FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan byzantine;
  byzantine.neurons = {{2, 0, fault::NeuronFaultKind::kByzantine, 0.6}};
  timeline.add(10, 25, crash);
  timeline.add(30, 34, byzantine);

  ServeConfig config;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 99;

  config.replicas = 2;
  ReplicaPool reference(net, config);
  reference.set_timeline(timeline);
  ASSERT_EQ(reference.submit_batch(workload), workload.size());
  const auto expected = reference.drain();

  for (const std::size_t replicas : {1u, 2u, 8u}) {
    config.replicas = replicas;
    ReplicaPool pool(net, config);
    pool.set_timeline(timeline);
    std::vector<RequestResult> served;
    RequestResult ready;
    for (const auto& x : workload) {
      ASSERT_TRUE(pool.submit(x));
      while (pool.poll(ready)) served.push_back(ready);
    }
    while (pool.pending() > 0) served.push_back(pool.wait());
    EXPECT_FALSE(pool.poll(ready));  // nothing outstanding, nothing buffered

    ASSERT_EQ(served.size(), expected.size()) << replicas << " replicas";
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, expected[i].output)
          << "request " << i << " on " << replicas << " replicas";
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       expected[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
    }
    EXPECT_EQ(pool.report().completed, workload.size());
  }
}

TEST(Serve, ReportAggregatesThroughputPercentilesAndResets) {
  const auto net = serve_net();
  const auto workload = serve_workload(50, 61);

  ServeConfig config;
  config.replicas = 4;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 31;
  ReplicaPool pool(net, config);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto results = pool.drain();
  const auto report = pool.report();

  EXPECT_EQ(report.completed, workload.size());
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.replicas, 4u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_EQ(report.completion.count, workload.size());
  EXPECT_LE(report.completion.min, report.p50);
  EXPECT_LE(report.p50, report.p95);
  EXPECT_LE(report.p95, report.p99);
  EXPECT_LE(report.p99, report.completion.max);
  // Every request cut (7-5) senders at 5 receivers plus 1 at the output.
  std::size_t resets = 0;
  for (const auto& result : results) resets += result.resets_sent;
  EXPECT_EQ(report.resets_sent, resets);
  EXPECT_EQ(resets, workload.size() * (2u * 5u + 1u));
  // Process-level fault counters exist for the transport runtime only; an
  // in-process pool never sheds at the transport layer, never loses an
  // in-flight request, and never restarts a worker.
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.resubmitted, 0u);
  EXPECT_EQ(report.worker_restarts, 0u);
  // Likewise the wire counters: an in-process pool sends no batch frames
  // and is never rebound.
  EXPECT_EQ(report.batch_frames, 0u);
  EXPECT_EQ(report.rebinds, 0u);
}

}  // namespace
}  // namespace wnf::serve
