// Unit tests for src/tensor: matrix storage and the gemv/gemm kernels.
#include <gtest/gtest.h>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace wnf {
namespace {

TEST(Matrix, ZeroInitialised) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (double v : m.flat()) EXPECT_EQ(v, 0.0);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 2, 1.5);
  for (double v : m.flat()) EXPECT_EQ(v, 1.5);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RowViewIsMutable) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0;
  EXPECT_EQ(m(1, 2), 9.0);
}

TEST(Matrix, MaxAbs) {
  Matrix m{{1.0, -7.0}, {3.0, 4.0}};
  EXPECT_EQ(m.max_abs(), 7.0);
  EXPECT_EQ(Matrix().max_abs(), 0.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(Matrix, ApproxEqual) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0, 2.0 + 1e-9}};
  EXPECT_TRUE(a.approx_equal(b, 1e-8));
  EXPECT_FALSE(a.approx_equal(b, 1e-10));
  EXPECT_FALSE(a.approx_equal(Matrix(2, 1), 1.0));
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 0), 1.0);
}

TEST(Ops, GemvKnownValues) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  std::vector<double> x{5.0, 6.0};
  std::vector<double> y(2);
  gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Ops, GemvTransposedMatchesExplicitTranspose) {
  Rng rng(5);
  Matrix a(7, 5);
  for (double& v : a.flat()) v = rng.normal();
  std::vector<double> x(7);
  for (double& v : x) v = rng.normal();
  std::vector<double> expect(5);
  gemv(a.transposed(), x, expect);
  std::vector<double> got(5);
  gemv_transposed(a, x, got);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(got[i], expect[i], 1e-12);
}

TEST(Ops, GemmKnownValues) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c;
  gemm(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Ops, GemmMatchesGemvColumns) {
  Rng rng(9);
  Matrix a(4, 6);
  Matrix b(6, 3);
  for (double& v : a.flat()) v = rng.normal();
  for (double& v : b.flat()) v = rng.normal();
  Matrix c;
  gemm(a, b, c);
  // Column j of C equals A * (column j of B).
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<double> col(6);
    for (std::size_t k = 0; k < 6; ++k) col[k] = b(k, j);
    std::vector<double> expect(4);
    gemv(a, col, expect);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(c(i, j), expect[i], 1e-12);
  }
}

TEST(Ops, GemvParallelMatchesSerial) {
  Rng rng(11);
  ThreadPool pool(4);
  Matrix a(300, 300);  // above the parallel threshold
  for (double& v : a.flat()) v = rng.normal();
  std::vector<double> x(300);
  for (double& v : x) v = rng.normal();
  std::vector<double> serial(300);
  std::vector<double> parallel(300);
  gemv(a, x, serial);
  gemv_parallel(pool, a, x, parallel);
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], serial[i]);
  }
}

TEST(Ops, Rank1Update) {
  Matrix a(2, 2, 1.0);
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{3.0, 4.0};
  rank1_update(a, 0.5, x, y);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0 + 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0 + 0.5 * 2.0 * 4.0);
}

TEST(Ops, DotAxpyNormMax) {
  std::vector<double> x{1.0, -2.0, 3.0};
  std::vector<double> y{4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 - 18.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
  EXPECT_DOUBLE_EQ(max_abs(x), 3.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace wnf
