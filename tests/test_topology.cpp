// Sparse & small-world topology tests: generator invariants, the builder's
// Topology-spec API, CSR-vs-dense forward bit-identity, sparse-aware FEP and
// Lipschitz tightening, per-edge channel capacities in the simulator, the
// edge-aware synapse adversary, and the acceptance campaign — a small-world
// net bit-identical across all four EvalBackends, with worker SIGKILLs
// mid-campaign on the transport path.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/fep.hpp"
#include "core/lipschitz.hpp"
#include "data/dataset.hpp"
#include "dist/sim.hpp"
#include "exec/injector_backend.hpp"
#include "exec/serve_backend.hpp"
#include "exec/simulator_backend.hpp"
#include "exec/transport_backend.hpp"
#include "fault/adversary.hpp"
#include "fault/campaign.hpp"
#include "nn/builder.hpp"
#include "nn/topology.hpp"
#include "nn/train.hpp"
#include "transport/worker.hpp"

namespace wnf::nn {
namespace {

#define SKIP_WITHOUT_TRANSPORT()                                    \
  if (!transport::transport_available()) {                          \
    GTEST_SKIP() << "no POSIX fork/socketpair on this platform";    \
  }

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Two sparse hidden layers (12x8 and 12x12) under one connectivity spec.
FeedForwardNetwork topo_net(const Topology& spec, std::uint64_t seed = 5) {
  Rng rng(seed);
  return NetworkBuilder(8)
      .activation(ActivationKind::kSigmoid, 1.0)
      .topology(spec)
      .hidden(12)
      .hidden(12)
      .init(InitKind::kUniform, 0.6)
      .build(rng);
}

std::vector<std::vector<double>> random_probes(std::size_t count,
                                               std::size_t dim, Rng& rng) {
  std::vector<std::vector<double>> probes(count);
  for (auto& p : probes) {
    for (std::size_t i = 0; i < dim; ++i) p.push_back(rng.uniform());
  }
  return probes;
}

// ------------------------------------------------------------------- specs

TEST(TopologySpec, FactoriesCarryTheirParameters) {
  EXPECT_TRUE(Topology::dense().is_dense());
  const Topology sparse = Topology::random_sparse(0.3);
  EXPECT_FALSE(sparse.is_dense());
  EXPECT_EQ(sparse.kind, Topology::Kind::kRandomSparse);
  EXPECT_DOUBLE_EQ(sparse.density, 0.3);
  const Topology sw = Topology::small_world(4, 0.2);
  EXPECT_EQ(sw.kind, Topology::Kind::kSmallWorld);
  EXPECT_EQ(sw.neighbors, 4u);
  EXPECT_DOUBLE_EQ(sw.beta, 0.2);
  EXPECT_EQ(sw, Topology::small_world(4, 0.2));
  EXPECT_NE(sw, Topology::small_world(5, 0.2));
}

// -------------------------------------------------------------- generators

TEST(LayerTopologyGenerators, DenseCoversEveryEdge) {
  const auto topo = LayerTopology::dense(4, 3);
  EXPECT_EQ(topo.out_size(), 4u);
  EXPECT_EQ(topo.in_size(), 3u);
  EXPECT_EQ(topo.edge_count(), 12u);
  EXPECT_TRUE(topo.is_full());
  EXPECT_EQ(topo.max_in_degree(), 3u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(topo.in_degree(j), 3u);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(topo.has_edge(j, i));
  }
}

TEST(LayerTopologyGenerators, RandomSparseIsDeterministicAndNeverIsolated) {
  Rng a(21);
  Rng b(21);
  Rng c(22);
  const auto first = LayerTopology::random_sparse(16, 16, 0.3, a);
  const auto second = LayerTopology::random_sparse(16, 16, 0.3, b);
  const auto other = LayerTopology::random_sparse(16, 16, 0.3, c);
  EXPECT_EQ(first, second);   // same seed, same adjacency
  EXPECT_NE(first, other);    // different seed, different adjacency
  EXPECT_LT(first.edge_count(), 16u * 16u);
  for (std::size_t j = 0; j < first.out_size(); ++j) {
    ASSERT_GE(first.in_degree(j), 1u);
    const auto row = first.row(j);
    for (std::size_t e = 1; e < row.size(); ++e) {
      EXPECT_LT(row[e - 1], row[e]);  // sorted, unique
    }
    EXPECT_LT(row.back(), first.in_size());
  }
}

TEST(LayerTopologyGenerators, SmallWorldKeepsLatticeDegree) {
  Rng rng(7);
  const auto lattice = LayerTopology::small_world(16, 16, 4, 0.0, rng);
  for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(lattice.in_degree(j), 4u);
  // beta = 0: receiver 0 anchors at sender 0 and keeps the 4 ring-nearest
  // senders {-2, -1, 0, 1} mod 16 = {14, 15, 0, 1}.
  const auto row0 = lattice.row(0);
  ASSERT_EQ(row0.size(), 4u);
  EXPECT_EQ(row0[0], 0u);
  EXPECT_EQ(row0[1], 1u);
  EXPECT_EQ(row0[2], 14u);
  EXPECT_EQ(row0[3], 15u);

  Rng a(9);
  Rng b(9);
  const auto rewired = LayerTopology::small_world(16, 16, 4, 0.4, a);
  EXPECT_EQ(rewired, LayerTopology::small_world(16, 16, 4, 0.4, b));
  for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(rewired.in_degree(j), 4u);
  EXPECT_NE(rewired, lattice);  // 64 edges at beta=0.4: some rewire

  // k >= in clamps to a fully connected block.
  Rng d(3);
  const auto full = LayerTopology::small_world(4, 3, 5, 0.5, d);
  EXPECT_TRUE(full.is_full());
}

TEST(LayerTopologyGenerators, FromSpecMatchesDirectGenerators) {
  Rng a(13);
  Rng b(13);
  EXPECT_EQ(LayerTopology::from_spec(Topology::random_sparse(0.4), 10, 8, a),
            LayerTopology::random_sparse(10, 8, 0.4, b));
  Rng c(13);
  Rng d(13);
  EXPECT_EQ(LayerTopology::from_spec(Topology::small_world(3, 0.25), 10, 8, c),
            LayerTopology::small_world(10, 8, 3, 0.25, d));
  // Dense specs consume no randomness: the stream continues identically.
  Rng e(13);
  Rng f(13);
  (void)LayerTopology::from_spec(Topology::dense(), 10, 8, e);
  EXPECT_EQ(bits(e.uniform()), bits(f.uniform()));
}

TEST(LayerTopology, EdgeOffsetAndRowLookupsRoundTrip) {
  Rng rng(31);
  const auto topo = LayerTopology::random_sparse(12, 10, 0.3, rng);
  ASSERT_FALSE(topo.is_full());
  const auto row_ptr = topo.row_ptr();
  const auto cols = topo.cols();
  for (std::size_t j = 0; j < topo.out_size(); ++j) {
    for (std::size_t e = row_ptr[j]; e < row_ptr[j + 1]; ++e) {
      EXPECT_EQ(topo.edge_row(e), j);
      EXPECT_EQ(topo.edge_offset(j, cols[e]), e);
      EXPECT_TRUE(topo.has_edge(j, cols[e]));
    }
  }
  // Some absent pair must exist; its offset is npos.
  bool found_absent = false;
  for (std::size_t j = 0; j < topo.out_size() && !found_absent; ++j) {
    for (std::size_t i = 0; i < topo.in_size(); ++i) {
      if (!topo.has_edge(j, i)) {
        EXPECT_EQ(topo.edge_offset(j, i), LayerTopology::npos);
        found_absent = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_absent);
}

TEST(LayerTopology, EdgeCapacitiesInstallAndClear) {
  Rng rng(5);
  auto topo = LayerTopology::random_sparse(6, 6, 0.5, rng);
  EXPECT_FALSE(topo.has_edge_capacities());
  std::vector<double> caps(topo.edge_count());
  for (std::size_t e = 0; e < caps.size(); ++e) {
    caps[e] = 0.5 + static_cast<double>(e);
  }
  topo.set_edge_capacities(caps);
  ASSERT_TRUE(topo.has_edge_capacities());
  for (std::size_t e = 0; e < caps.size(); ++e) {
    EXPECT_DOUBLE_EQ(topo.edge_capacity(e), caps[e]);
  }
  topo.set_uniform_edge_capacity(2.0);
  for (std::size_t e = 0; e < topo.edge_count(); ++e) {
    EXPECT_DOUBLE_EQ(topo.edge_capacity(e), 2.0);
  }
  topo.clear_edge_capacities();
  EXPECT_FALSE(topo.has_edge_capacities());
}

TEST(LayerTopologyDeathTest, RejectsMalformedStructureAndCapacities) {
  // Unsorted columns within a row.
  EXPECT_DEATH(LayerTopology(3, {0, 2, 3, 4}, {2, 1, 0, 0}), "precondition");
  // Empty row (receiver 1 has no in-edges).
  EXPECT_DEATH(LayerTopology(3, {0, 1, 1, 2}, {0, 2}), "precondition");
  // Column out of range.
  EXPECT_DEATH(LayerTopology(3, {0, 1, 2, 3}, {0, 3, 1}), "precondition");
  Rng rng(2);
  auto topo = LayerTopology::random_sparse(4, 4, 0.5, rng);
  EXPECT_DEATH(topo.set_edge_capacities({1.0}), "precondition");
  EXPECT_DEATH(
      topo.set_edge_capacities(std::vector<double>(topo.edge_count(), -1.0)),
      "precondition");
}

// ------------------------------------------------------------ layer & net

TEST(SparseLayer, SetTopologyMasksWeightsAndDerivesReceptiveField) {
  Rng rng(17);
  auto net = topo_net(Topology::dense(), 17);
  auto& layer = net.layer(2);
  const Matrix before = layer.weights();
  const auto topo = LayerTopology::random_sparse(12, 12, 0.3, rng);
  layer.set_topology(topo);
  ASSERT_TRUE(layer.is_sparse());
  EXPECT_EQ(layer.receptive_field(), topo.max_in_degree());
  EXPECT_EQ(layer.edge_count(), topo.edge_count());
  for (std::size_t j = 0; j < 12; ++j) {
    EXPECT_EQ(layer.in_degree(j), topo.in_degree(j));
    for (std::size_t i = 0; i < 12; ++i) {
      if (topo.has_edge(j, i)) {
        EXPECT_EQ(bits(layer.weights()(j, i)), bits(before(j, i)));
      } else {
        EXPECT_EQ(bits(layer.weights()(j, i)), bits(0.0));
      }
    }
  }
  layer.clear_topology();
  EXPECT_FALSE(layer.is_sparse());
  EXPECT_EQ(layer.receptive_field(), layer.in_size());
}

TEST(SparseLayer, FullTopologyWithoutCapacitiesDecaysToDense) {
  auto net = topo_net(Topology::dense(), 23);
  auto& layer = net.layer(1);
  layer.set_topology(LayerTopology::dense(12, 8));
  EXPECT_FALSE(layer.is_sparse());  // nothing to represent: stays dense
  auto capped = LayerTopology::dense(12, 8);
  capped.set_uniform_edge_capacity(3.0);
  layer.set_topology(capped);
  EXPECT_TRUE(layer.is_sparse());  // capacities make the structure load-bearing
}

TEST(SparseNetwork, CsrForwardBitIdenticalToDenseKernelOnMaskedWeights) {
  // The core invariant of the whole subsystem: gemv accumulates left to
  // right, so skipping exact-zero (masked) terms changes nothing — the CSR
  // path and the dense kernel over the masked matrix agree bit for bit.
  const auto net = topo_net(Topology::small_world(5, 0.3), 29);
  ASSERT_TRUE(net.layer(1).is_sparse());
  ASSERT_TRUE(net.layer(2).is_sparse());
  auto dense_twin = net;
  for (std::size_t l = 1; l <= dense_twin.layer_count(); ++l) {
    dense_twin.layer(l).clear_topology();
  }
  EXPECT_LT(net.synapse_count(), dense_twin.synapse_count());
  Rng rng(31);
  for (const auto& x : random_probes(25, net.input_dim(), rng)) {
    EXPECT_EQ(bits(net.evaluate(x)), bits(dense_twin.evaluate(x)));
  }
}

TEST(SparseNetwork, SynapseCountCountsRealisedEdgesOnly) {
  const auto net = topo_net(Topology::small_world(5, 0.0), 3);
  // Small-world degree is exactly k when k < in: 12*5 + 12*5 edges, plus
  // 12 + 12 biases, plus 12 output synapses and the output bias.
  EXPECT_EQ(net.synapse_count(), 12u * 5 + 12u * 5 + 12u + 12u + 12u + 1u);
}

// ----------------------------------------------------------------- builder

TEST(TopologyBuilder, DenseDefaultIsBitIdenticalToLegacyConstruction) {
  Rng a(41);
  Rng b(41);
  const auto legacy = NetworkBuilder(4).hidden(6).hidden(5).build(a);
  const auto spelled = NetworkBuilder(4)
                           .topology(Topology::dense())
                           .hidden(6)
                           .hidden(5)
                           .build(b);
  for (std::size_t l = 1; l <= legacy.layer_count(); ++l) {
    const auto& lw = legacy.layer(l).weights();
    const auto& sw = spelled.layer(l).weights();
    for (std::size_t j = 0; j < lw.rows(); ++j) {
      for (std::size_t i = 0; i < lw.cols(); ++i) {
        EXPECT_EQ(bits(lw(j, i)), bits(sw(j, i)));
      }
    }
  }
  for (std::size_t i = 0; i < legacy.output_weights().size(); ++i) {
    EXPECT_EQ(bits(legacy.output_weights()[i]),
              bits(spelled.output_weights()[i]));
  }
}

TEST(TopologyBuilder, PerLayerOverrideComposesWithNetworkDefault) {
  Rng rng(47);
  const auto net = NetworkBuilder(8)
                       .topology(Topology::random_sparse(0.3))
                       .hidden(16)
                       .hidden(16, Topology::small_world(4, 0.2))
                       .hidden(16, Topology::dense())
                       .build(rng);
  ASSERT_TRUE(net.layer(1).is_sparse());
  ASSERT_TRUE(net.layer(2).is_sparse());
  EXPECT_FALSE(net.layer(3).is_sparse());
  // The small-world override shows its signature: every in-degree is k.
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_EQ(net.layer(2).in_degree(j), 4u);
  }
}

TEST(TopologyBuilder, WeightStreamInvariantAcrossSparseSpecs) {
  // Adjacency draws come from split children, so two different sparse specs
  // at the same seed share every weight draw — edges present in both carry
  // bit-identical weights, and biases/output weights match exactly.
  const auto a = topo_net(Topology::random_sparse(0.4), 53);
  const auto b = topo_net(Topology::small_world(4, 0.5), 53);
  for (std::size_t l = 1; l <= a.layer_count(); ++l) {
    const auto* ta = a.layer(l).topology();
    const auto* tb = b.layer(l).topology();
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    for (std::size_t j = 0; j < a.layer(l).out_size(); ++j) {
      EXPECT_EQ(bits(a.layer(l).bias()[j]), bits(b.layer(l).bias()[j]));
      for (std::size_t i = 0; i < a.layer(l).in_size(); ++i) {
        if (ta->has_edge(j, i) && tb->has_edge(j, i)) {
          EXPECT_EQ(bits(a.layer(l).weights()(j, i)),
                    bits(b.layer(l).weights()(j, i)));
        }
      }
    }
  }
  for (std::size_t i = 0; i < a.output_weights().size(); ++i) {
    EXPECT_EQ(bits(a.output_weights()[i]), bits(b.output_weights()[i]));
  }
}

// ------------------------------------------------------------------ bounds

TEST(SparseBounds, ProfileRecordsPerNeuronFanIn) {
  const auto net = topo_net(Topology::small_world(5, 0.3), 59);
  const auto p = theory::profile_of(net);
  ASSERT_EQ(p.fan_in.size(), 2u);
  for (std::size_t l = 1; l <= 2; ++l) {
    EXPECT_TRUE(p.layer_sparse(l));
    const auto* topo = net.layer(l).topology();
    ASSERT_NE(topo, nullptr);
    std::size_t max_deg = 0;
    for (std::size_t j = 0; j < net.layer_width(l); ++j) {
      EXPECT_EQ(p.fan_in_of(l, j), topo->in_degree(j));
      max_deg = std::max(max_deg, topo->in_degree(j));
    }
    EXPECT_EQ(p.receptive(l), max_deg);
  }
  const auto dense = topo_net(Topology::dense(), 59);
  const auto pd = theory::profile_of(dense);
  EXPECT_FALSE(pd.layer_sparse(1));
  EXPECT_FALSE(pd.layer_sparse(2));
  EXPECT_EQ(pd.receptive(1), 8u);
  EXPECT_EQ(pd.receptive(2), 12u);
}

TEST(SparseBounds, SparseAdjacencyTightensFepAndLipschitz) {
  const auto net = topo_net(Topology::small_world(4, 0.2), 61);
  const auto sparse = theory::profile_of(net);
  // The dense-assumption profile of the same architecture: identical widths
  // and weight maxima, but no sparse caps.
  auto dense_view = sparse;
  dense_view.sparse.assign(dense_view.depth, 0);
  dense_view.set_uniform_fan_in(1, 8);
  dense_view.set_uniform_fan_in(2, 12);

  theory::FepOptions options;
  options.mode = theory::FailureMode::kCrash;
  const std::vector<std::size_t> faults{8, 0};
  const double tight =
      theory::forward_error_propagation(sparse, faults, options);
  const double loose =
      theory::forward_error_propagation(dense_view, faults, options);
  EXPECT_GT(tight, 0.0);
  // 8 crashed senders, but every layer-2 neuron listens to at most 4 of
  // them: the error-carrier count halves.
  EXPECT_LT(tight, loose);
  EXPECT_NEAR(tight / loose, 0.5, 1e-12);

  EXPECT_LT(theory::network_lipschitz_bound(sparse),
            theory::network_lipschitz_bound(dense_view));
}

TEST(SparseBounds, CampaignObservationsRespectTightenedBound) {
  // Soundness end to end: the sparse-tightened Theorem 2/4 bounds still
  // dominate everything a Monte-Carlo campaign observes on a sparse net.
  const auto net = topo_net(Topology::small_world(5, 0.3), 67);
  for (const auto attack : {fault::AttackKind::kRandomCrash,
                            fault::AttackKind::kRandomSynapseByzantine}) {
    fault::CampaignConfig config;
    config.attack = attack;
    config.trials = 40;
    config.probes_per_trial = 8;
    config.seed = 71;
    std::vector<std::size_t> counts(net.layer_count(), 1);
    theory::FepOptions options;
    if (attack == fault::AttackKind::kRandomCrash) {
      options.mode = theory::FailureMode::kCrash;
    } else {
      counts.push_back(1);
      options.mode = theory::FailureMode::kByzantine;
    }
    const auto result = fault::run_campaign(net, counts, config, options);
    EXPECT_GT(result.fep_bound, 0.0);
    EXPECT_LE(result.observed_max, result.fep_bound);
  }
}

// --------------------------------------------------------------- adversary

TEST(SparseAdversary, SynapsePlansSampleOnlyRealisedEdges) {
  const auto net = topo_net(Topology::random_sparse(0.3), 73);
  const std::vector<std::size_t> counts{3, 3, 2};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(100 + seed);
    const auto plan =
        fault::random_synapse_byzantine_plan(net, counts, 1.0, rng);
    ASSERT_EQ(plan.synapses.size(), 8u);
    for (const auto& fault : plan.synapses) {
      if (fault.layer > net.layer_count()) continue;  // output synapse set
      const auto* topo = net.layer(fault.layer).topology();
      ASSERT_NE(topo, nullptr);
      EXPECT_TRUE(topo->has_edge(fault.to, fault.from));
    }
    fault::validate_plan(plan, net);  // aborts on an absent edge
  }
}

TEST(SparsePlanDeathTest, RejectsSynapseFaultOnAbsentEdge) {
  const auto net = topo_net(Topology::random_sparse(0.3), 79);
  const auto* topo = net.layer(2).topology();
  ASSERT_NE(topo, nullptr);
  ASSERT_FALSE(topo->is_full());
  std::size_t to = 0;
  std::size_t from = 0;
  bool found = false;
  for (std::size_t j = 0; j < 12 && !found; ++j) {
    for (std::size_t i = 0; i < 12; ++i) {
      if (!topo->has_edge(j, i)) {
        to = j;
        from = i;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found);
  fault::FaultPlan plan;
  plan.synapses = {{2, to, from, fault::SynapseFaultKind::kCrash, 0.0}};
  EXPECT_DEATH(fault::validate_plan(plan, net), "absent edge");
}

// ---------------------------------------------------- per-edge capacities

TEST(EdgeCapacities, UniformNonBindingCapsAreABitIdenticalNoOp) {
  // With every per-edge capacity above anything transmitted, the explicit
  // clamping loop must accumulate term for term like gemv_csr — outputs are
  // bit-identical, faults included.
  const auto net = topo_net(Topology::small_world(5, 0.3), 83);
  auto capped = net;
  for (std::size_t l = 1; l <= capped.layer_count(); ++l) {
    ASSERT_TRUE(capped.layer(l).is_sparse());
    LayerTopology topo = *capped.layer(l).topology();
    topo.set_uniform_edge_capacity(4.0);  // sigmoid values never exceed 1
    capped.layer(l).set_topology(std::move(topo));
  }
  fault::FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  plan.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  const auto* topo = net.layer(2).topology();
  plan.synapses = {{2, topo->edge_row(0), topo->cols()[0],
                    fault::SynapseFaultKind::kCrash, 0.0}};

  dist::NetworkSimulator plain(net, dist::SimConfig{});
  dist::NetworkSimulator with_caps(capped, dist::SimConfig{});
  plain.apply_faults(plan);
  with_caps.apply_faults(plan);
  Rng rng(89);
  for (const auto& x : random_probes(10, net.input_dim(), rng)) {
    EXPECT_EQ(bits(plain.evaluate(x).output),
              bits(with_caps.evaluate(x).output));
  }
}

TEST(EdgeCapacities, BindingCapacityClampsExactlyThatEdge) {
  // 2-in/2-out single hidden layer with hand-picked weights; the capacity
  // on edge (0,0) clamps what input 0 delivers to neuron 0, nothing else.
  std::vector<DenseLayer> hidden;
  DenseLayer layer(2, 2);
  layer.weights()(0, 0) = 1.0;
  layer.weights()(0, 1) = 0.5;
  layer.weights()(1, 0) = -0.25;
  layer.weights()(1, 1) = 0.75;
  layer.bias()[0] = 0.1;
  layer.bias()[1] = -0.2;
  auto topo = LayerTopology::dense(2, 2);
  topo.set_edge_capacities({0.25, 8.0, 8.0, 8.0});
  layer.set_topology(std::move(topo));
  hidden.push_back(std::move(layer));
  const FeedForwardNetwork net(2, std::move(hidden), {1.0, -1.0}, 0.05,
                               Activation(ActivationKind::kSigmoid, 1.0));

  const std::vector<double> x{0.8, 0.5};
  const double pre0 = 1.0 * 0.25 + 0.5 * 0.5 + 0.1;  // 0.8 clamped to 0.25
  const double pre1 = -0.25 * 0.8 + 0.75 * 0.5 + -0.2;
  const auto& phi = net.activation();
  dist::NetworkSimulator sim(net, dist::SimConfig{});
  EXPECT_DOUBLE_EQ(sim.evaluate(x).output,
                   phi.value(pre0) - phi.value(pre1) + 0.05);

  // A crash of the capped synapse removes the *clamped* delivery.
  fault::FaultPlan plan;
  plan.synapses = {{1, 0, 0, fault::SynapseFaultKind::kCrash, 0.0}};
  sim.apply_faults(plan);
  EXPECT_DOUBLE_EQ(sim.evaluate(x).output,
                   phi.value(pre0 - 1.0 * 0.25) - phi.value(pre1) + 0.05);
}

// ------------------------------------------------------- training masking

TEST(SparseTraining, OptimizerStepsPreserveTheSparsityMask) {
  Rng rng(97);
  auto net = NetworkBuilder(2)
                 .topology(Topology::random_sparse(0.35))
                 .hidden(8)
                 .hidden(8)
                 .init(InitKind::kUniform, 0.6)
                 .build(rng);
  std::vector<LayerTopology> topologies;
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    ASSERT_TRUE(net.layer(l).is_sparse());
    topologies.push_back(*net.layer(l).topology());
  }
  const Matrix before = net.layer(1).weights();

  data::Dataset dataset;
  dataset.dim = 2;
  for (int n = 0; n < 12; ++n) {
    dataset.inputs.push_back({rng.uniform(), rng.uniform()});
    dataset.labels.push_back(rng.uniform());
  }
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 4;
  config.weight_decay = 0.01;  // pushes non-edge weights off 0 if unmasked
  config.fep_lambda = 0.1;     // exercises the regulariser's re-mask too
  train(net, dataset, config, rng);

  bool some_edge_moved = false;
  for (std::size_t l = 1; l <= net.layer_count(); ++l) {
    const auto& topo = topologies[l - 1];
    ASSERT_NE(net.layer(l).topology(), nullptr);
    EXPECT_EQ(*net.layer(l).topology(), topo);
    for (std::size_t j = 0; j < net.layer(l).out_size(); ++j) {
      for (std::size_t i = 0; i < net.layer(l).in_size(); ++i) {
        if (!topo.has_edge(j, i)) {
          EXPECT_EQ(bits(net.layer(l).weights()(j, i)), bits(0.0));
        } else if (l == 1 &&
                   bits(net.layer(l).weights()(j, i)) != bits(before(j, i))) {
          some_edge_moved = true;
        }
      }
    }
  }
  EXPECT_TRUE(some_edge_moved);
}

// ------------------------------------------------- acceptance: campaigns

const std::vector<fault::AttackKind>& all_attacks() {
  static const std::vector<fault::AttackKind> attacks{
      fault::AttackKind::kRandomCrash,
      fault::AttackKind::kTopWeightCrash,
      fault::AttackKind::kGreedyCrash,
      fault::AttackKind::kRandomByzantine,
      fault::AttackKind::kGradientByzantine,
      fault::AttackKind::kRandomSynapseByzantine};
  return attacks;
}

std::vector<std::size_t> counts_for(const nn::FeedForwardNetwork& net,
                                    fault::AttackKind kind) {
  std::vector<std::size_t> counts(net.layer_count(), 1);
  if (kind == fault::AttackKind::kRandomSynapseByzantine) counts.push_back(1);
  return counts;
}

theory::FepOptions options_for(fault::AttackKind kind) {
  theory::FepOptions options;
  options.capacity = 1.0;
  const bool crash = kind == fault::AttackKind::kRandomCrash ||
                     kind == fault::AttackKind::kTopWeightCrash ||
                     kind == fault::AttackKind::kGreedyCrash;
  options.mode =
      crash ? theory::FailureMode::kCrash : theory::FailureMode::kByzantine;
  return options;
}

TEST(SparseCampaign, SmallWorldCrossChecksBitEqualOnAnalyticBackends) {
  // Every attack kind, injector vs simulator, on a small-world net: the
  // analytic path and the message path agree bit for bit along sparse
  // edges under the transmitted-value convention.
  const auto net = topo_net(Topology::small_world(5, 0.3), 101);
  for (const auto attack : all_attacks()) {
    fault::CampaignConfig config;
    config.attack = attack;
    config.trials = 10;
    config.probes_per_trial = 6;
    config.seed = 103;
    config.convention = theory::CapacityConvention::kTransmittedValueBound;
    const auto counts = counts_for(net, attack);
    exec::InjectorBackend injector(net);
    exec::SimulatorBackend simulator(net);
    const auto check = fault::cross_check_campaign(
        net, counts, config, options_for(attack), injector, simulator);
    EXPECT_EQ(check.max_divergence, 0.0)
        << "attack " << static_cast<int>(attack);
  }
}

TEST(SparseCampaign, ServeBackendBitIdenticalAcrossWorkerCounts) {
  // Small-world campaign on the threaded serving pool: 1, 2, and 8 workers
  // return bit-identical trial streams even under heavy-tail latencies and
  // a straggler cut (so scheduling genuinely varies between runs).
  const auto net = topo_net(Topology::small_world(5, 0.3), 107);
  fault::CampaignConfig config;
  config.attack = fault::AttackKind::kRandomSynapseByzantine;
  config.trials = 12;
  config.probes_per_trial = 5;
  config.seed = 109;
  config.convention = theory::CapacityConvention::kTransmittedValueBound;
  const auto counts = counts_for(net, config.attack);
  const auto trials = fault::make_campaign_trials(net, counts, config);

  std::vector<std::vector<exec::TrialResult>> runs;
  for (const std::size_t replicas : {1u, 2u, 8u}) {
    exec::ServeBackendOptions options;
    options.replicas = replicas;
    options.latency = {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
    options.straggler_cut = {6, 6};
    options.seed = 113;
    exec::ServeBackend backend(net, options);
    runs.push_back(backend.run_trials(trials));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t t = 0; t < runs[0].size(); ++t) {
      ASSERT_EQ(runs[r][t].probes.size(), runs[0][t].probes.size());
      for (std::size_t i = 0; i < runs[0][t].probes.size(); ++i) {
        EXPECT_EQ(bits(runs[r][t].probes[i].output),
                  bits(runs[0][t].probes[i].output));
        EXPECT_EQ(runs[r][t].probes[i].resets_sent,
                  runs[0][t].probes[i].resets_sent);
      }
    }
  }
}

TEST(SparseCampaign, TransportBackendSurvivesSigkillBitIdentically) {
  // The full acceptance bar: the same small-world trial stream on forked
  // worker processes at 1, 2, and 8 workers — each run losing workers to
  // scripted SIGKILLs mid-campaign — reproduces the simulator baseline bit
  // for bit.
  SKIP_WITHOUT_TRANSPORT();
  const auto net = topo_net(Topology::small_world(5, 0.3), 127);
  fault::CampaignConfig config;
  config.attack = fault::AttackKind::kRandomSynapseByzantine;
  config.trials = 20;
  config.probes_per_trial = 8;
  config.seed = 131;
  config.convention = theory::CapacityConvention::kTransmittedValueBound;
  const auto counts = counts_for(net, config.attack);
  const auto trials = fault::make_campaign_trials(net, counts, config);

  exec::SimulatorBackend simulator(net);
  const auto baseline = simulator.run_trials(trials);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    exec::TransportBackendOptions options;
    options.workers = workers;
    // Kill worker 0 early and (when there is one) another worker later;
    // request ids run 0..159 (20 trials x 8 probes).
    options.crash_script = {{0, 20, 64},
                            {workers > 1 ? 1u : 0u, 90, 110}};
    exec::TransportBackend backend(net, options);
    const auto run = backend.run_trials(trials);
    ASSERT_EQ(run.size(), baseline.size()) << workers << " workers";
    for (std::size_t t = 0; t < baseline.size(); ++t) {
      ASSERT_EQ(run[t].probes.size(), baseline[t].probes.size());
      for (std::size_t i = 0; i < baseline[t].probes.size(); ++i) {
        EXPECT_EQ(bits(run[t].probes[i].output),
                  bits(baseline[t].probes[i].output))
            << workers << " workers, trial " << t << ", probe " << i;
      }
    }
  }
}

}  // namespace
}  // namespace wnf::nn
