// Training tests: losses, optimiser convergence on learnable targets,
// dropout, weight decay, the Fep regulariser, serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/dataset.hpp"
#include "nn/builder.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "nn/train.hpp"

namespace wnf::nn {
namespace {

data::Dataset mean_dataset(std::size_t n, Rng& rng) {
  const auto target = data::make_mean(2);
  return data::sample_uniform(target, n, rng);
}

TEST(Loss, MseAndMaeAndSupKnownValues) {
  Rng rng(3);
  auto net = NetworkBuilder(2).hidden(3).build(rng);
  data::Dataset dataset;
  dataset.dim = 2;
  dataset.inputs = {{0.1, 0.2}, {0.8, 0.9}};
  Workspace ws;
  const double p0 = net.evaluate(dataset.inputs[0], ws);
  const double p1 = net.evaluate(dataset.inputs[1], ws);
  dataset.labels = {p0 + 0.1, p1 - 0.3};
  EXPECT_NEAR(mse(net, dataset), (0.01 + 0.09) / 2.0, 1e-12);
  EXPECT_NEAR(mae(net, dataset), (0.1 + 0.3) / 2.0, 1e-12);
  EXPECT_NEAR(sup_error(net, dataset), 0.3, 1e-12);
}

class OptimizerConvergence : public testing::TestWithParam<Optimizer> {};

TEST_P(OptimizerConvergence, LearnsTheMeanFunction) {
  Rng rng(11);
  auto net = NetworkBuilder(2)
                 .activation(ActivationKind::kSigmoid, 1.0)
                 .hidden(8)
                 .build(rng);
  const auto dataset = mean_dataset(128, rng);
  const double before = mse(net, dataset);
  TrainConfig config;
  config.epochs = 120;
  config.optimizer = GetParam();
  config.learning_rate = GetParam() == Optimizer::kAdam ? 0.02 : 0.2;
  const auto result = train(net, dataset, config, rng);
  EXPECT_LT(result.final_mse, before);
  EXPECT_LT(result.final_mse, 0.003)
      << "optimizer failed to fit an easy target";
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergence,
                         testing::Values(Optimizer::kSgd, Optimizer::kMomentum,
                                         Optimizer::kAdam));

TEST(Train, HistoryHasOneEntryPerEpoch) {
  Rng rng(13);
  auto net = NetworkBuilder(2).hidden(4).build(rng);
  const auto dataset = mean_dataset(32, rng);
  TrainConfig config;
  config.epochs = 10;
  const auto result = train(net, dataset, config, rng);
  EXPECT_EQ(result.epochs_run, 10u);
  EXPECT_EQ(result.mse_history.size(), 10u);
  EXPECT_DOUBLE_EQ(result.mse_history.back(), result.final_mse);
}

TEST(Train, EarlyStopOnTarget) {
  Rng rng(17);
  auto net = NetworkBuilder(2).hidden(8).build(rng);
  const auto dataset = mean_dataset(128, rng);
  TrainConfig config;
  config.epochs = 500;
  config.target_mse = 0.01;
  config.learning_rate = 0.02;
  const auto result = train(net, dataset, config, rng);
  EXPECT_TRUE(result.reached_target);
  EXPECT_LT(result.epochs_run, 500u);
  EXPECT_LE(result.final_mse, 0.01);
}

TEST(Train, DeterministicGivenSeed) {
  const auto run_once = [] {
    Rng rng(19);
    auto net = NetworkBuilder(2).hidden(5).build(rng);
    const auto dataset = mean_dataset(64, rng);
    TrainConfig config;
    config.epochs = 20;
    train(net, dataset, config, rng);
    return net;
  };
  EXPECT_TRUE(run_once().approx_equal(run_once(), 0.0));
}

TEST(Train, WeightDecayShrinksWeightMax) {
  Rng rng_a(23);
  Rng rng_b(23);
  auto plain = NetworkBuilder(2).hidden(8).build(rng_a);
  auto decayed = NetworkBuilder(2).hidden(8).build(rng_b);
  Rng data_rng(29);
  const auto dataset = mean_dataset(128, data_rng);
  TrainConfig config;
  config.epochs = 80;
  Rng train_a(31);
  Rng train_b(31);
  train(plain, dataset, config, train_a);
  config.weight_decay = 0.01;
  train(decayed, dataset, config, train_b);
  const auto convention = WeightMaxConvention::kExcludeBias;
  double plain_max = 0.0;
  double decayed_max = 0.0;
  for (std::size_t l = 1; l <= 2; ++l) {
    plain_max = std::max(plain_max, plain.weight_max(l, convention));
    decayed_max = std::max(decayed_max, decayed.weight_max(l, convention));
  }
  EXPECT_LT(decayed_max, plain_max);
}

TEST(Train, DropoutStillLearns) {
  Rng rng(37);
  auto net = NetworkBuilder(2).hidden(16).build(rng);
  const auto dataset = mean_dataset(128, rng);
  TrainConfig config;
  config.epochs = 150;
  config.dropout = 0.2;
  config.learning_rate = 0.02;
  const auto result = train(net, dataset, config, rng);
  EXPECT_LT(result.final_mse, 0.01);
}

TEST(FepRegularizer, PenaltyTracksMaxWeight) {
  Rng rng(41);
  auto net = NetworkBuilder(2).hidden(6).init(InitKind::kUniform, 0.5).build(rng);
  const FepRegularizer reg(1.0, 8.0);
  const double penalty = reg.penalty(net);
  // p-norm upper-bounds the max and is within count^(1/p) of it.
  double sum_of_maxima = 0.0;
  sum_of_maxima += net.layer(1).weights().max_abs();
  double out_max = 0.0;
  for (double w : net.output_weights()) out_max = std::max(out_max, std::fabs(w));
  sum_of_maxima += out_max;
  EXPECT_GE(penalty, sum_of_maxima - 1e-9);
  EXPECT_LE(penalty, sum_of_maxima * 2.0);
}

TEST(FepRegularizer, GradientStepReducesPenalty) {
  Rng rng(43);
  auto net = NetworkBuilder(2).hidden(6).init(InitKind::kUniform, 1.0).build(rng);
  const FepRegularizer reg(1.0, 8.0);
  const double before = reg.penalty(net);
  reg.apply_gradient_step(net, 0.1);
  EXPECT_LT(reg.penalty(net), before);
}

TEST(FepRegularizer, ZeroLambdaIsNoop) {
  Rng rng(47);
  auto net = NetworkBuilder(2).hidden(4).build(rng);
  const auto copy = net;
  FepRegularizer(0.0, 8.0).apply_gradient_step(net, 0.5);
  EXPECT_TRUE(net.approx_equal(copy, 0.0));
}

TEST(FepRegularizer, TrainingWithItShrinksWeightMax) {
  Rng rng_a(53);
  Rng rng_b(53);
  auto plain = NetworkBuilder(2).hidden(8).build(rng_a);
  auto regularized = NetworkBuilder(2).hidden(8).build(rng_b);
  Rng data_rng(59);
  const auto dataset = mean_dataset(128, data_rng);
  TrainConfig config;
  config.epochs = 80;
  Rng train_a(61);
  Rng train_b(61);
  train(plain, dataset, config, train_a);
  config.fep_lambda = 0.02;
  train(regularized, dataset, config, train_b);
  const auto convention = WeightMaxConvention::kExcludeBias;
  EXPECT_LT(regularized.weight_max(2, convention),
            plain.weight_max(2, convention));
}

TEST(Serialize, RoundTripPreservesNetwork) {
  Rng rng(67);
  const auto net = NetworkBuilder(3)
                       .activation(ActivationKind::kTanh01, 1.5)
                       .hidden(5)
                       .hidden(4)
                       .build(rng);
  std::stringstream stream;
  save_network(net, stream);
  const auto loaded = load_network(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->approx_equal(net, 0.0));
  // And behaviourally identical.
  const std::vector<double> x{0.1, 0.7, 0.4};
  EXPECT_DOUBLE_EQ(loaded->evaluate(x), net.evaluate(x));
}

TEST(Serialize, PreservesReceptiveField) {
  Rng rng(71);
  auto net = NetworkBuilder(6).hidden(4).build(rng);
  net.layer(1).set_receptive_field(3);
  std::stringstream stream;
  save_network(net, stream);
  const auto loaded = load_network(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->layer(1).receptive_field(), 3u);
}

TEST(Serialize, RejectsMalformedInput) {
  std::stringstream bad("not-a-network at all");
  EXPECT_FALSE(load_network(bad).has_value());
  std::stringstream truncated("wnf-network v1\nactivation sigmoid 1\n");
  EXPECT_FALSE(load_network(truncated).has_value());
  std::stringstream wrong_version("wnf-network v9\n");
  EXPECT_FALSE(load_network(wrong_version).has_value());
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(73);
  const auto net = NetworkBuilder(2).hidden(3).build(rng);
  const std::string path = testing::TempDir() + "/wnf_net_test.txt";
  ASSERT_TRUE(save_network_file(net, path));
  const auto loaded = load_network_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->approx_equal(net, 0.0));
  EXPECT_FALSE(load_network_file("/nonexistent/path.txt").has_value());
}

}  // namespace
}  // namespace wnf::nn
