// Transport-subsystem tests: the wire codec (round-trips and malformed-
// input rejection), the multi-process WorkerHost against the in-process
// ReplicaPool (bit-identity across 1/2/8 worker processes, with and
// without real SIGKILLed workers), and the TransportBackend behind the
// EvalBackend seam (bit-equivalence with ServeBackend and — at campaign
// scale, transmitted-value convention — with SimulatorBackend).
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "exec/serve_backend.hpp"
#include "exec/simulator_backend.hpp"
#include "exec/transport_backend.hpp"
#include "fault/campaign.hpp"
#include "nn/builder.hpp"
#include "nn/serialize.hpp"
#include "obs/json.hpp"
#include "obs/snapshot.hpp"
#include "obs/watchdog.hpp"
#include "serve/pool.hpp"
#include "transport/codec.hpp"
#include "transport/host.hpp"
#include "transport/monitor.hpp"
#include "transport/worker.hpp"

namespace wnf::transport {
namespace {

nn::FeedForwardNetwork transport_net(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::NetworkBuilder(3)
      .activation(nn::ActivationKind::kSigmoid, 1.0)
      .hidden(7)
      .hidden(5)
      .init(nn::InitKind::kUniform, 0.5)
      .build(rng);
}

std::vector<std::vector<double>> transport_workload(std::size_t count,
                                                    std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<std::vector<double>> workload(count);
  for (auto& x : workload) {
    x = {rng.uniform(), rng.uniform(), rng.uniform()};
  }
  return workload;
}

dist::LatencyModel heavy_tail() {
  return {dist::LatencyKind::kHeavyTail, 1.0, 50.0, 0.3};
}

fault::FaultPlan sample_plan() {
  fault::FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  plan.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0},
                  {2, 1, fault::NeuronFaultKind::kByzantine, 0.7},
                  {1, 4, fault::NeuronFaultKind::kStuckAt, 0.3}};
  plan.synapses = {{2, 3, 1, fault::SynapseFaultKind::kCrash, 0.0},
                   {3, 0, 2, fault::SynapseFaultKind::kByzantine, -0.4}};
  return plan;
}

#define SKIP_WITHOUT_TRANSPORT()                                   \
  if (!transport_available()) {                                    \
    GTEST_SKIP() << "no POSIX fork/socketpair on this platform";   \
  }

// ------------------------------------------------------------------ codec

TEST(Codec, FramesRoundTripEveryMessageType) {
  HelloMsg hello{4, 1234};
  RequestMsg request;
  request.id = 77;
  request.segment = 3;
  request.rng_state = {1, 2, 0xdeadbeefULL, ~std::uint64_t{0}};
  request.x = {0.25, -0.0, 3e-308};
  ResultMsg result{42, 0.125, 17.5, 9};
  SegmentsMsg segments;
  segments.plans = {fault::FaultPlan{}, sample_plan()};

  std::vector<std::uint8_t> stream;
  for (const auto& frame :
       {Codec::encode(MessageType::kHello, Codec::encode_hello(hello)),
        Codec::encode(MessageType::kRequest, Codec::encode_request(request)),
        Codec::encode(MessageType::kResult, Codec::encode_result(result)),
        Codec::encode(MessageType::kSegments,
                      Codec::encode_segments(segments)),
        Codec::encode(MessageType::kShutdown, {})}) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  Frame frame;
  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kHello);
  const auto hello_out = Codec::decode_hello(frame.payload);
  ASSERT_TRUE(hello_out.has_value());
  EXPECT_EQ(hello_out->worker_index, 4u);
  EXPECT_EQ(hello_out->pid, 1234u);

  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kRequest);
  const auto request_out = Codec::decode_request(frame.payload);
  ASSERT_TRUE(request_out.has_value());
  EXPECT_EQ(request_out->id, 77u);
  EXPECT_EQ(request_out->segment, 3u);
  EXPECT_EQ(request_out->rng_state, request.rng_state);
  ASSERT_EQ(request_out->x.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(request_out->x[i]),
              std::bit_cast<std::uint64_t>(request.x[i]));
  }

  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kResult);
  const auto result_out = Codec::decode_result(frame.payload);
  ASSERT_TRUE(result_out.has_value());
  EXPECT_EQ(result_out->id, 42u);
  EXPECT_EQ(result_out->output, 0.125);
  EXPECT_EQ(result_out->completion_time, 17.5);
  EXPECT_EQ(result_out->resets_sent, 9u);

  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kSegments);
  const auto segments_out = Codec::decode_segments(frame.payload);
  ASSERT_TRUE(segments_out.has_value());
  ASSERT_EQ(segments_out->plans.size(), 2u);
  EXPECT_TRUE(segments_out->plans[0].empty());
  const auto& plan = segments_out->plans[1];
  const auto reference = sample_plan();
  EXPECT_EQ(plan.convention, reference.convention);
  ASSERT_EQ(plan.neurons.size(), reference.neurons.size());
  for (std::size_t i = 0; i < plan.neurons.size(); ++i) {
    EXPECT_EQ(plan.neurons[i].layer, reference.neurons[i].layer);
    EXPECT_EQ(plan.neurons[i].neuron, reference.neurons[i].neuron);
    EXPECT_EQ(plan.neurons[i].kind, reference.neurons[i].kind);
    EXPECT_EQ(plan.neurons[i].value, reference.neurons[i].value);
  }
  ASSERT_EQ(plan.synapses.size(), reference.synapses.size());
  for (std::size_t i = 0; i < plan.synapses.size(); ++i) {
    EXPECT_EQ(plan.synapses[i].layer, reference.synapses[i].layer);
    EXPECT_EQ(plan.synapses[i].to, reference.synapses[i].to);
    EXPECT_EQ(plan.synapses[i].from, reference.synapses[i].from);
    EXPECT_EQ(plan.synapses[i].kind, reference.synapses[i].kind);
    EXPECT_EQ(plan.synapses[i].value, reference.synapses[i].value);
  }

  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  EXPECT_EQ(frame.type, MessageType::kShutdown);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_TRUE(stream.empty());
}

TEST(Codec, BindRoundTripsNetworkBitExact) {
  const auto net = transport_net(11);
  BindMsg bind;
  std::ostringstream text;
  nn::save_network(net, text);
  bind.network_text = text.str();
  bind.sim.capacity = 2.5;
  bind.latency = heavy_tail();
  bind.wait_counts = {3, 7, 5, 1};

  auto frame_bytes =
      Codec::encode(MessageType::kBind, Codec::encode_bind(bind));
  Frame frame;
  ASSERT_EQ(Codec::try_parse(frame_bytes, frame), ParseStatus::kFrame);
  const auto out = Codec::decode_bind(frame.payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->sim.capacity, 2.5);
  EXPECT_EQ(out->latency.kind, dist::LatencyKind::kHeavyTail);
  EXPECT_EQ(out->latency.spread, 50.0);
  EXPECT_EQ(out->wait_counts, bind.wait_counts);

  std::istringstream in(out->network_text);
  const auto loaded = nn::load_network(in);
  ASSERT_TRUE(loaded.has_value());
  Rng rng(5);
  for (int n = 0; n < 16; ++n) {
    const std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform()};
    EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded->evaluate(x)),
              std::bit_cast<std::uint64_t>(net.evaluate(x)))
        << "wire-shipped network must be the same function bit for bit";
  }
}

TEST(Codec, MalformedFramesAreRejectedNotInterpreted) {
  const auto good =
      Codec::encode(MessageType::kHello, Codec::encode_hello({1, 2}));

  // Truncated header and truncated payload: wait for more bytes.
  for (std::size_t keep : {std::size_t{0}, std::size_t{5},
                           kFrameHeaderSize - 1, good.size() - 1}) {
    std::vector<std::uint8_t> partial(good.begin(),
                                      good.begin() + static_cast<long>(keep));
    Frame frame;
    EXPECT_EQ(Codec::try_parse(partial, frame), ParseStatus::kNeedMore)
        << keep << " bytes";
    EXPECT_EQ(partial.size(), keep);  // kNeedMore must not consume
  }

  // Corrupted magic, type, and payload bytes: malformed. (A corrupted
  // version byte is the one corruption with its own status — see
  // CrossVersionFramesAreRejectedDistinctly.)
  for (const std::size_t flip : {std::size_t{0},   // magic
                                 std::size_t{6},   // type (-> 0, invalid)
                                 kFrameHeaderSize,  // payload vs checksum
                                 good.size() - 1}) {
    auto bad = good;
    bad[flip] ^= 0x5a;
    Frame frame;
    EXPECT_EQ(Codec::try_parse(bad, frame), ParseStatus::kMalformed)
        << "flip at byte " << flip;
  }

  // A lying length field larger than the sanity cap is rejected before
  // any allocation, even though the bytes "after" it never arrive.
  {
    auto bad = good;
    bad[8] = 0xff; bad[9] = 0xff; bad[10] = 0xff; bad[11] = 0xff;
    Frame frame;
    EXPECT_EQ(Codec::try_parse(bad, frame), ParseStatus::kMalformed);
  }

  // Structurally invalid payloads: truncated vector, trailing garbage,
  // out-of-range enum, element count that cannot fit the payload.
  RequestMsg request;
  request.x = {1.0, 2.0};
  auto payload = Codec::encode_request(request);
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_FALSE(Codec::decode_request(truncated).has_value());
  auto overlong = payload;
  overlong.push_back(0);
  EXPECT_FALSE(Codec::decode_request(overlong).has_value());
  auto lying_count = payload;
  lying_count[8 + 4 + 32] = 0xff;  // x-count field low byte
  EXPECT_FALSE(Codec::decode_request(lying_count).has_value());

  auto plan_payload = Codec::encode_segments({{sample_plan()}});
  auto bad_kind = plan_payload;
  bad_kind[4 + 1 + 4 + 4 + 4] = 0x7f;  // first neuron's kind byte
  EXPECT_FALSE(Codec::decode_segments(bad_kind).has_value());

  EXPECT_FALSE(Codec::decode_bind({0x01}).has_value());
  EXPECT_FALSE(Codec::decode_hello({}).has_value());
  EXPECT_FALSE(Codec::decode_result({1, 2, 3}).has_value());
}

TEST(Codec, CrossVersionFramesAreRejectedDistinctly) {
  // A structurally sound frame from another protocol version — older (a
  // v3 peer's frame reaching this v4 parser) or newer (a v5 frame from
  // some future peer) — is a version mismatch, not corruption. The
  // distinct status is the whole point: "incompatible peer" and "garbage
  // stream" demand different operator responses.
  ASSERT_EQ(kProtocolVersion, 4u);
  const auto good =
      Codec::encode(MessageType::kHello, Codec::encode_hello({1, 2}));
  for (const std::uint16_t version : {std::uint16_t{3}, std::uint16_t{5}}) {
    auto foreign = good;
    foreign[4] = static_cast<std::uint8_t>(version);  // LE u16 low byte
    foreign[5] = 0;
    Frame frame;
    EXPECT_EQ(Codec::try_parse(foreign, frame), ParseStatus::kWrongVersion)
        << "version " << version;
    EXPECT_EQ(foreign.size(), good.size());  // rejected, not consumed
  }
  // Corrupting the version *and* the magic is still just garbage.
  auto garbage = good;
  garbage[0] ^= 0x5a;
  garbage[4] = 3;
  Frame frame;
  EXPECT_EQ(Codec::try_parse(garbage, frame), ParseStatus::kMalformed);
}

TEST(Codec, TelemetryFramesRoundTrip) {
  TelemetryMsg msg;
  msg.tid = 7;
  msg.dropped = 42;
  for (std::uint64_t i = 0; i < 5; ++i) {
    obs::TraceEvent event;
    event.ts_ns = 1000 * (i + 1);
    event.id = 0x1234560 + i;
    event.value = i;
    event.name = static_cast<obs::TraceName>(i + 1);
    event.kind = static_cast<obs::EventKind>(i % 6);
    msg.events.push_back(event);
  }
  auto bytes = Codec::encode(MessageType::kTelemetry,
                             Codec::encode_telemetry(msg));
  Frame frame;
  ASSERT_EQ(Codec::try_parse(bytes, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kTelemetry);
  const auto out = Codec::decode_telemetry(frame.payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tid, msg.tid);
  EXPECT_EQ(out->dropped, msg.dropped);
  ASSERT_EQ(out->events.size(), msg.events.size());
  for (std::size_t i = 0; i < msg.events.size(); ++i) {
    EXPECT_EQ(out->events[i].ts_ns, msg.events[i].ts_ns);
    EXPECT_EQ(out->events[i].id, msg.events[i].id);
    EXPECT_EQ(out->events[i].value, msg.events[i].value);
    EXPECT_EQ(out->events[i].name, msg.events[i].name);
    EXPECT_EQ(out->events[i].kind, msg.events[i].kind);
  }

  // Defensive decoding: truncation, trailing garbage, a lying event
  // count, and out-of-range name/kind enums must all reject.
  auto payload = Codec::encode_telemetry(msg);
  auto truncated = payload;
  truncated.pop_back();
  EXPECT_FALSE(Codec::decode_telemetry(truncated).has_value());
  auto overlong = payload;
  overlong.push_back(0);
  EXPECT_FALSE(Codec::decode_telemetry(overlong).has_value());
  auto lying_count = payload;
  lying_count[4 + 8] = 0xff;  // event-count low byte
  EXPECT_FALSE(Codec::decode_telemetry(lying_count).has_value());
  auto bad_name = payload;
  bad_name[4 + 8 + 4 + 8 + 8 + 8] = 0xff;  // first event's name low byte
  EXPECT_FALSE(Codec::decode_telemetry(bad_name).has_value());
  auto bad_kind = payload;
  bad_kind[4 + 8 + 4 + 8 + 8 + 8 + 2] = 0x7f;  // first event's kind byte
  EXPECT_FALSE(Codec::decode_telemetry(bad_kind).has_value());
}

TEST(Codec, BatchFramesRoundTrip) {
  BatchRequestMsg batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    RequestMsg probe;
    probe.id = 100 + i;
    probe.segment = static_cast<std::uint32_t>(i % 3);
    probe.rng_state = {i, ~i, 0x5eedULL + i, i * i};
    probe.x = {0.5 * static_cast<double>(i), -0.0, 1e-300};
    batch.probes.push_back(probe);
  }
  auto stream = Codec::encode(MessageType::kBatchRequest,
                              Codec::encode_batch_request(batch));
  Frame frame;
  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kBatchRequest);
  const auto out = Codec::decode_batch_request(frame.payload);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->probes.size(), batch.probes.size());
  for (std::size_t i = 0; i < batch.probes.size(); ++i) {
    EXPECT_EQ(out->probes[i].id, batch.probes[i].id);
    EXPECT_EQ(out->probes[i].segment, batch.probes[i].segment);
    EXPECT_EQ(out->probes[i].rng_state, batch.probes[i].rng_state);
    ASSERT_EQ(out->probes[i].x.size(), batch.probes[i].x.size());
    for (std::size_t j = 0; j < batch.probes[i].x.size(); ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out->probes[i].x[j]),
                std::bit_cast<std::uint64_t>(batch.probes[i].x[j]));
    }
  }

  BatchResultMsg results;
  for (std::uint64_t i = 0; i < 5; ++i) {
    results.results.push_back({100 + i, ProbeStatus::kOk,
                               0.25 * static_cast<double>(i),
                               10.0 + static_cast<double>(i), i});
  }
  results.results[3].status = ProbeStatus::kFailed;  // the byte round-trips
  auto result_stream = Codec::encode(MessageType::kBatchResult,
                                     Codec::encode_batch_result(results));
  ASSERT_EQ(Codec::try_parse(result_stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kBatchResult);
  const auto result_out = Codec::decode_batch_result(frame.payload);
  ASSERT_TRUE(result_out.has_value());
  ASSERT_EQ(result_out->results.size(), results.results.size());
  for (std::size_t i = 0; i < results.results.size(); ++i) {
    EXPECT_EQ(result_out->results[i].id, results.results[i].id);
    EXPECT_EQ(result_out->results[i].status, results.results[i].status);
    EXPECT_EQ(result_out->results[i].output, results.results[i].output);
    EXPECT_EQ(result_out->results[i].completion_time,
              results.results[i].completion_time);
    EXPECT_EQ(result_out->results[i].resets_sent,
              results.results[i].resets_sent);
  }
}

TEST(Codec, RebindRoundTripsBindAndSegments) {
  const auto net = transport_net(23);
  RebindMsg rebind;
  std::ostringstream text;
  nn::save_network(net, text);
  rebind.bind.network_text = text.str();
  rebind.bind.sim.capacity = 1.5;
  rebind.bind.latency = heavy_tail();
  rebind.bind.wait_counts = {2, 4, 3, 1};
  rebind.segments.plans = {fault::FaultPlan{}, sample_plan()};

  auto stream =
      Codec::encode(MessageType::kRebind, Codec::encode_rebind(rebind));
  Frame frame;
  ASSERT_EQ(Codec::try_parse(stream, frame), ParseStatus::kFrame);
  ASSERT_EQ(frame.type, MessageType::kRebind);
  const auto out = Codec::decode_rebind(frame.payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->bind.network_text, rebind.bind.network_text);
  EXPECT_EQ(out->bind.sim.capacity, 1.5);
  EXPECT_EQ(out->bind.latency.kind, dist::LatencyKind::kHeavyTail);
  EXPECT_EQ(out->bind.wait_counts, rebind.bind.wait_counts);
  ASSERT_EQ(out->segments.plans.size(), 2u);
  EXPECT_TRUE(out->segments.plans[0].empty());
  EXPECT_EQ(out->segments.plans[1].neurons.size(),
            sample_plan().neurons.size());
}

TEST(Codec, MalformedBatchAndRebindFramesAreRejected) {
  // --- BatchRequest ---
  BatchRequestMsg batch;
  RequestMsg probe;
  probe.id = 7;
  probe.x = {1.0, 2.0};
  batch.probes = {probe, probe};
  const auto payload = Codec::encode_batch_request(batch);

  // An empty batch is structurally meaningless.
  std::vector<std::uint8_t> zero_count{0, 0, 0, 0};
  EXPECT_FALSE(Codec::decode_batch_request(zero_count).has_value());

  // A lying probe count must fail the bounds check before any allocation.
  auto lying = payload;
  lying[0] = 0xff;
  lying[1] = 0xff;
  EXPECT_FALSE(Codec::decode_batch_request(lying).has_value());

  // Truncated per-probe payload: every cut inside the second probe fails.
  for (std::size_t keep = 4 + 1; keep < payload.size(); keep += 7) {
    std::vector<std::uint8_t> cut(payload.begin(),
                                  payload.begin() + static_cast<long>(keep));
    EXPECT_FALSE(Codec::decode_batch_request(cut).has_value())
        << keep << " bytes kept";
  }

  // Trailing garbage after the declared probes.
  auto overlong = payload;
  overlong.push_back(0);
  EXPECT_FALSE(Codec::decode_batch_request(overlong).has_value());

  // --- BatchResult ---
  BatchResultMsg results;
  results.results = {{1, ProbeStatus::kOk, 0.5, 1.0, 0},
                     {2, ProbeStatus::kOk, 0.25, 2.0, 1}};
  const auto result_payload = Codec::encode_batch_result(results);

  EXPECT_FALSE(Codec::decode_batch_result(zero_count).has_value());

  auto lying_results = result_payload;
  lying_results[0] = 0xff;
  lying_results[1] = 0xff;
  EXPECT_FALSE(Codec::decode_batch_result(lying_results).has_value());

  auto bad_status = result_payload;
  bad_status[4 + 8] = 0x7f;  // first entry's status byte
  EXPECT_FALSE(Codec::decode_batch_result(bad_status).has_value());

  auto truncated_result = result_payload;
  truncated_result.pop_back();
  EXPECT_FALSE(Codec::decode_batch_result(truncated_result).has_value());

  auto overlong_result = result_payload;
  overlong_result.push_back(0);
  EXPECT_FALSE(Codec::decode_batch_result(overlong_result).has_value());

  // --- Rebind ---
  const auto net = transport_net(29);
  RebindMsg rebind;
  std::ostringstream text;
  nn::save_network(net, text);
  rebind.bind.network_text = text.str();
  rebind.segments.plans = {sample_plan()};
  const auto rebind_payload = Codec::encode_rebind(rebind);

  // Truncation anywhere — inside the bind length prefix, the bind bytes,
  // the segments prefix, or the segments bytes — is rejected.
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{4},
                           std::size_t{10}, rebind_payload.size() - 1}) {
    std::vector<std::uint8_t> cut(
        rebind_payload.begin(),
        rebind_payload.begin() + static_cast<long>(keep));
    EXPECT_FALSE(Codec::decode_rebind(cut).has_value()) << keep;
  }

  // A lying inner-bind length must not be interpreted.
  auto lying_bind = rebind_payload;
  lying_bind[0] = 0xff;
  lying_bind[1] = 0xff;
  EXPECT_FALSE(Codec::decode_rebind(lying_bind).has_value());

  // Garbage inner payloads fail the inner codecs even when the lengths
  // are consistent.
  auto garbage = rebind_payload;
  garbage[4] ^= 0x5a;  // first byte of the bind payload
  EXPECT_FALSE(Codec::decode_rebind(garbage).has_value());

  auto trailing = rebind_payload;
  trailing.push_back(0);
  EXPECT_FALSE(Codec::decode_rebind(trailing).has_value());
}

// ------------------------------------------------------------- WorkerHost

TEST(WorkerHost, MatchesReplicaPoolBitForBit) {
  SKIP_WITHOUT_TRANSPORT();
  // The same deployment shape in threads and in processes: identical seed,
  // timeline, and cut must give identical outputs, completion times, and
  // reset counts — the wire protocol is invisible to the numbers.
  const auto net = transport_net(13);
  const auto workload = transport_workload(40, 21);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0},
                   {1, 5, fault::NeuronFaultKind::kCrash, 0.0}};
  fault::FaultPlan byzantine;
  byzantine.neurons = {{2, 0, fault::NeuronFaultKind::kByzantine, 0.6}};
  timeline.add(10, 25, crash);
  timeline.add(30, 34, byzantine);

  serve::ServeConfig pool_config;
  pool_config.replicas = 2;
  pool_config.latency = heavy_tail();
  pool_config.straggler_cut = {2, 1};
  pool_config.seed = 99;
  serve::ReplicaPool pool(net, pool_config);
  pool.set_timeline(timeline);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto expected = pool.drain();

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 99;
  WorkerHost host(net, config);
  host.set_timeline(timeline);
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();

  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output);
    EXPECT_DOUBLE_EQ(served[i].completion_time, expected[i].completion_time);
    EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
  }

  const auto report = host.report();
  EXPECT_EQ(report.completed, workload.size());
  EXPECT_EQ(report.replicas, 2u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.resubmitted, 0u);
  EXPECT_EQ(report.worker_restarts, 0u);
  EXPECT_EQ(host.alive_workers(), 2u);
}

TEST(WorkerHost, ScriptedSigkillResubmitsToSurvivorsAndRespawns) {
  SKIP_WITHOUT_TRANSPORT();
  // The acceptance bar: a crash window SIGKILLs a real worker process, its
  // in-flight requests complete on the survivors, the worker respawns at
  // the recovery boundary — and the results are bit-identical across
  // 1/2/8 workers and to a deployment that never crashed at all.
  const auto net = transport_net(13);
  const auto workload = transport_workload(48, 21);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(12, 30, crash);

  // The undisturbed reference deployment.
  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 4242;
  std::vector<serve::RequestResult> reference;
  {
    WorkerHost host(net, config);
    host.set_timeline(timeline);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    reference = host.drain();
    EXPECT_EQ(host.report().worker_restarts, 0u);
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    TransportConfig crashed = config;
    crashed.workers = workers;
    WorkerHost host(net, crashed);
    host.set_timeline(timeline);
    // Worker 0 dies with the logical crash window and recovers with it; a
    // second death hits another worker (or worker 0 again) later.
    host.set_crash_script({{0, 12, 30},
                           {workers > 1 ? 1u : 0u, 36, 42}});
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();

    ASSERT_EQ(served.size(), reference.size()) << workers << " workers";
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, reference[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, reference[i].output)
          << "request " << i << " on " << workers << " workers";
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       reference[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, reference[i].resets_sent);
    }
    const auto report = host.report();
    EXPECT_EQ(report.completed, workload.size());
    EXPECT_EQ(report.worker_restarts, 2u) << workers << " workers";
    EXPECT_EQ(host.alive_workers(), workers);  // both recovered
    EXPECT_EQ(host.restarts(), 2u);
  }
}

TEST(WorkerHost, SpontaneousWorkerDeathIsDetectedAndHealed) {
  SKIP_WITHOUT_TRANSPORT();
  // An *unscripted* SIGKILL from outside (this test playing saboteur): the
  // host notices the EOF, respawns immediately, resubmits, and the drain
  // still completes with bit-identical results.
  const auto net = transport_net(13);
  const auto workload = transport_workload(30, 33);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 7;
  std::vector<serve::RequestResult> expected;
  {
    WorkerHost host(net, config);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    expected = host.drain();
  }

  WorkerHost host(net, config);
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const int victim = host.worker_pid(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const auto served = host.drain();
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output);
  }
  EXPECT_EQ(host.report().worker_restarts, 1u);
  EXPECT_EQ(host.alive_workers(), 2u);
}

TEST(WorkerHost, BoundedQueueShedsAsTransportBackpressure) {
  SKIP_WITHOUT_TRANSPORT();
  const auto net = transport_net();
  const auto workload = transport_workload(12);

  TransportConfig config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.seed = 5;
  WorkerHost host(net, config);
  EXPECT_EQ(host.submit_batch(workload), 8u);
  const auto report_before = host.report();
  EXPECT_EQ(report_before.shed, 4u);
  EXPECT_EQ(report_before.rejected, 4u);  // mirrored for pool parity
  const auto served = host.drain();
  EXPECT_EQ(served.size(), 8u);
  // Shed load never consumed a split: id 8 serves next, like the pool.
  EXPECT_TRUE(host.submit(workload[8]));
  const auto next = host.drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].id, 8u);
}

TEST(WorkerHost, AsyncPollWaitBitIdenticalToDrainUnderFaults) {
  SKIP_WITHOUT_TRANSPORT();
  // The async pipeline against the legacy drain, across 1/2/8 worker
  // processes under an active fault timeline: submitting one request at a
  // time while poll() harvests opportunistically, then wait()ing out the
  // tail, must deliver results bit-identical to submit-everything-then-
  // drain — the CompletionQueue's id-ordered merge erases the pipelining.
  const auto net = transport_net(13);
  const auto workload = transport_workload(40, 21);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(10, 25, crash);

  TransportConfig config;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 99;

  config.workers = 2;
  std::vector<serve::RequestResult> expected;
  {
    WorkerHost reference(net, config);
    reference.set_timeline(timeline);
    ASSERT_EQ(reference.submit_batch(workload), workload.size());
    expected = reference.drain();
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    TransportConfig async = config;
    async.workers = workers;
    WorkerHost host(net, async);
    host.set_timeline(timeline);
    std::vector<serve::RequestResult> served;
    serve::RequestResult ready;
    for (const auto& x : workload) {
      ASSERT_TRUE(host.submit(x));
      while (host.poll(ready)) served.push_back(ready);
    }
    while (host.pending() > 0) served.push_back(host.wait());
    EXPECT_FALSE(host.poll(ready));  // idle host: poll is a cheap no

    ASSERT_EQ(served.size(), expected.size()) << workers << " workers";
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, expected[i].output)
          << "request " << i << " on " << workers << " workers";
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       expected[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
    }
    EXPECT_EQ(host.report().completed, workload.size());
  }
}

TEST(WorkerHost, AsyncPollWaitSurvivesSigkillMidReplay) {
  SKIP_WITHOUT_TRANSPORT();
  // SIGKILL through the async seam: a scripted worker death fires while
  // the driver is still submitting (the crash script runs inside the pump
  // that poll()/wait() share), in-flight probes resubmit to survivors, and
  // the poll/wait stream is still bit-identical to an undisturbed drain.
  const auto net = transport_net(13);
  const auto workload = transport_workload(48, 21);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 4242;
  std::vector<serve::RequestResult> expected;
  {
    WorkerHost reference(net, config);
    ASSERT_EQ(reference.submit_batch(workload), workload.size());
    expected = reference.drain();
    EXPECT_EQ(reference.report().worker_restarts, 0u);
  }

  WorkerHost host(net, config);
  host.set_crash_script({{0, 12, 30}});
  std::vector<serve::RequestResult> served;
  serve::RequestResult ready;
  for (const auto& x : workload) {
    ASSERT_TRUE(host.submit(x));
    while (host.poll(ready)) served.push_back(ready);
  }
  while (host.pending() > 0) served.push_back(host.wait());

  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output) << "request " << i;
    EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
  }
  const auto report = host.report();
  EXPECT_EQ(report.worker_restarts, 1u);
  // How many probes the kill orphaned is wall-timing-dependent, but never
  // more than the victim's pipeline window.
  EXPECT_LE(report.resubmitted, config.pipeline_depth * config.batch);
  EXPECT_EQ(host.alive_workers(), 2u);
}

TEST(WorkerHost, WorkersCoalesceBatchResultFramesUnderPipelinePressure) {
  SKIP_WITHOUT_TRANSPORT();
  // Protocol v3's relaxed framing, observed end to end: at batch = 1 with
  // a deep pipeline, one flush lands several request frames in a worker's
  // socket at once, and the worker answers them with fewer combined
  // BatchResult frames — visible as result_frames < batch_frames — while
  // the results stay bit-identical to the in-process pool.
  const auto net = transport_net(13);
  const auto workload = transport_workload(24, 21);

  serve::ServeConfig pool_config;
  pool_config.replicas = 1;
  pool_config.latency = heavy_tail();
  pool_config.seed = 31;
  serve::ReplicaPool pool(net, pool_config);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto expected = pool.drain();

  TransportConfig config;
  config.workers = 1;
  config.batch = 1;
  config.pipeline_depth = 8;
  config.latency = heavy_tail();
  config.seed = 31;
  // Frame-coalescing is a socket-path behaviour; rings carry no frames.
  config.use_rings = false;
  WorkerHost host(net, config);
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();

  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output);
    EXPECT_DOUBLE_EQ(served[i].completion_time, expected[i].completion_time);
  }
  const auto report = host.report();
  // batch = 1 pins one probe per request frame; the eight frames each
  // flush delivers come back coalesced, so strictly fewer result frames.
  EXPECT_EQ(report.batch_frames, workload.size());
  EXPECT_GT(report.result_frames, 0u);
  EXPECT_LT(report.result_frames, report.batch_frames);
  EXPECT_EQ(host.result_frames(), report.result_frames);
}

TEST(WorkerHost, AdaptiveBatchRampsFrameSizesAndStaysBitIdentical) {
  SKIP_WITHOUT_TRANSPORT();
  // The variable-batch dispatcher: frames ramp 1, 2, 4, ... toward the
  // configured batch while the pipeline stays busy, the chosen sizes are
  // exposed in the report, and — batching being a wire knob, never a
  // semantics knob — results are bit-identical to fixed-size batching.
  const auto net = transport_net(13);
  const auto workload = transport_workload(96, 21);

  TransportConfig config;
  config.workers = 2;
  config.batch = 8;
  config.pipeline_depth = 4;
  config.latency = heavy_tail();
  config.seed = 77;
  // The ramp is observed through frame counters — pin the socket path.
  config.use_rings = false;

  config.adaptive_batch = false;
  std::vector<serve::RequestResult> expected;
  std::size_t fixed_frames = 0;
  {
    WorkerHost fixed(net, config);
    ASSERT_EQ(fixed.submit_batch(workload), workload.size());
    expected = fixed.drain();
    const auto report = fixed.report();
    fixed_frames = report.batch_frames;
    // Fixed batching never ramps: every frame carries `batch` probes
    // except possibly a remainder tail.
    EXPECT_EQ(report.batch_probes_max, config.batch);
  }

  config.adaptive_batch = true;
  WorkerHost host(net, config);
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();

  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output);
    EXPECT_DOUBLE_EQ(served[i].completion_time, expected[i].completion_time);
    EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
  }
  const auto report = host.report();
  // The ramp started at one probe, reached the configured cap under
  // saturation, and spent more frames doing it than fixed batching.
  EXPECT_EQ(report.batch_probes_min, 1u);
  EXPECT_EQ(report.batch_probes_max, config.batch);
  EXPECT_GE(report.batch_frames, fixed_frames);
}

TEST(WorkerHost, BatchSizeSweepIsBitIdenticalToReplicaPool) {
  SKIP_WITHOUT_TRANSPORT();
  // Batching is a wire-amortisation knob, not a semantics knob: the same
  // deployment at 1, 8, and 64 probes per frame serves outputs,
  // completion times, and reset counts bit-identical to the in-process
  // pool, while the batch_frames counter shows the syscall amortisation
  // actually happened.
  const auto net = transport_net(13);
  const auto workload = transport_workload(96, 43);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 1, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(20, 70, crash);

  serve::ServeConfig pool_config;
  pool_config.replicas = 2;
  pool_config.latency = heavy_tail();
  pool_config.straggler_cut = {2, 1};
  pool_config.seed = 123;
  serve::ReplicaPool pool(net, pool_config);
  pool.set_timeline(timeline);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto expected = pool.drain();

  for (const std::size_t batch : {1u, 8u, 64u}) {
    TransportConfig config;
    config.workers = 2;
    config.batch = batch;
    config.latency = heavy_tail();
    config.straggler_cut = {2, 1};
    config.seed = 123;
    // The sweep asserts frame-amortisation counters — pin the socket path
    // (RingPathBitIdentity covers the same sweep over the rings).
    config.use_rings = false;
    WorkerHost host(net, config);
    host.set_timeline(timeline);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();

    ASSERT_EQ(served.size(), expected.size()) << "batch " << batch;
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, expected[i].output)
          << "request " << i << " at batch " << batch;
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       expected[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
    }
    const auto report = host.report();
    EXPECT_EQ(report.completed, workload.size());
    // Amortisation: every frame but the stragglers carries `batch` probes.
    EXPECT_GE(report.batch_frames, (workload.size() + batch - 1) / batch);
    EXPECT_LE(report.batch_frames, workload.size());
    if (batch >= workload.size()) {
      EXPECT_LE(report.batch_frames, 2u * 2u);  // at most one per pipeline
    }
  }
}

TEST(WorkerHost, SigkillMidBatchResubmitsOnlyUnacknowledgedProbes) {
  SKIP_WITHOUT_TRANSPORT();
  // A worker dies with batches in flight. Per-probe acknowledgement means
  // the host resubmits at most the probes of unanswered batches — bounded
  // by pipeline_depth * batch — and the drain still completes
  // bit-identical to an undisturbed deployment.
  const auto net = transport_net(13);
  const auto workload = transport_workload(80, 51);

  TransportConfig config;
  config.workers = 2;
  config.batch = 8;
  config.pipeline_depth = 2;
  config.latency = heavy_tail();
  config.seed = 77;
  std::vector<serve::RequestResult> reference;
  {
    WorkerHost host(net, config);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    reference = host.drain();
  }

  WorkerHost host(net, config);
  // The kill fires when the dispatch frontier reaches id 24 — mid-stream,
  // with up to two 8-probe batches unacknowledged on the victim.
  host.set_crash_script({{0, 24, 60}});
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();
  ASSERT_EQ(served.size(), reference.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, reference[i].id);
    EXPECT_DOUBLE_EQ(served[i].output, reference[i].output) << i;
    EXPECT_DOUBLE_EQ(served[i].completion_time, reference[i].completion_time);
    EXPECT_EQ(served[i].resets_sent, reference[i].resets_sent);
  }
  const auto report = host.report();
  EXPECT_EQ(report.completed, workload.size());
  EXPECT_EQ(report.worker_restarts, 1u);
  // Only the victim's unacknowledged batches were lost, never more than
  // its pipeline could hold.
  EXPECT_LE(report.resubmitted, config.pipeline_depth * config.batch);
}

// -------------------------------------------------- persistent worker fleet

TEST(WorkerHost, RebindServesRepeatedCampaignsWithoutReforking) {
  SKIP_WITHOUT_TRANSPORT();
  // The fleet forks once; five rebind cycles each replay the same
  // deployment bit-identically, because a rebind restarts the id stream
  // and reseeds the root RNG — a rebound fleet IS a fresh host, minus the
  // forks.
  const auto net = transport_net(13);
  const auto workload = transport_workload(40, 21);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(10, 25, crash);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 99;

  std::vector<serve::RequestResult> expected;
  {
    WorkerHost fresh(net, config);
    fresh.set_timeline(timeline);
    ASSERT_EQ(fresh.submit_batch(workload), workload.size());
    expected = fresh.drain();
  }

  WorkerHost fleet(net, config);
  for (std::size_t campaign = 0; campaign < 5; ++campaign) {
    if (campaign > 0) fleet.rebind(net);
    fleet.set_timeline(timeline);
    ASSERT_EQ(fleet.submit_batch(workload), workload.size());
    const auto served = fleet.drain();
    ASSERT_EQ(served.size(), expected.size()) << "campaign " << campaign;
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, expected[i].output)
          << "campaign " << campaign << " request " << i;
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       expected[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, expected[i].resets_sent);
    }
    // The per-deployment report restarted with the rebind.
    const auto report = fleet.report();
    EXPECT_EQ(report.completed, workload.size());
    EXPECT_EQ(report.rebinds, campaign);
  }
  // The whole point: five campaigns, one fork per worker, zero respawns.
  EXPECT_EQ(fleet.total_spawns(), 2u);
  EXPECT_EQ(fleet.rebinds(), 4u);
  EXPECT_EQ(fleet.alive_workers(), 2u);
}

TEST(WorkerHost, RebindSwapsTheNetworkOnLiveWorkers) {
  SKIP_WITHOUT_TRANSPORT();
  // Rebinding moves the fleet to a different network (and cut) entirely;
  // results match a host constructed fresh on that network, and no new
  // processes fork.
  const auto net_a = transport_net(13);
  Rng rng(31);
  const auto net_b = nn::NetworkBuilder(3)
                         .activation(nn::ActivationKind::kTanh01, 0.8)
                         .hidden(9)
                         .hidden(4)
                         .init(nn::InitKind::kUniform, 0.4)
                         .build(rng);
  const auto workload = transport_workload(24, 61);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 5;

  std::vector<serve::RequestResult> expected_b;
  {
    TransportConfig config_b = config;
    config_b.straggler_cut = {3, 0};
    config_b.seed = 11;
    WorkerHost fresh(net_b, config_b);
    ASSERT_EQ(fresh.submit_batch(workload), workload.size());
    expected_b = fresh.drain();
  }

  WorkerHost fleet(net_a, config);
  ASSERT_EQ(fleet.submit_batch(workload), workload.size());
  (void)fleet.drain();  // a first campaign on net A

  RebindOptions options;
  options.seed = 11;
  options.straggler_cut = std::vector<std::size_t>{3, 0};
  fleet.rebind(net_b, std::move(options));
  ASSERT_EQ(fleet.submit_batch(workload), workload.size());
  const auto served = fleet.drain();
  ASSERT_EQ(served.size(), expected_b.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i].output, expected_b[i].output) << i;
    EXPECT_DOUBLE_EQ(served[i].completion_time,
                     expected_b[i].completion_time);
    EXPECT_EQ(served[i].resets_sent, expected_b[i].resets_sent);
  }
  EXPECT_EQ(fleet.total_spawns(), 2u);
}

TEST(WorkerHost, UnboundFleetBindsOnFirstRebind) {
  SKIP_WITHOUT_TRANSPORT();
  // connect() once, bind later: a fleet forked before its network exists
  // serves bit-identically to one constructed bound.
  const auto net = transport_net(13);
  const auto workload = transport_workload(20, 71);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 42;

  std::vector<serve::RequestResult> expected;
  {
    WorkerHost bound(net, config);
    ASSERT_EQ(bound.submit_batch(workload), workload.size());
    expected = bound.drain();
  }

  WorkerHost fleet(config);  // forks unbound
  EXPECT_FALSE(fleet.bound());
  fleet.rebind(net);
  EXPECT_TRUE(fleet.bound());
  ASSERT_EQ(fleet.submit_batch(workload), workload.size());
  const auto served = fleet.drain();
  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output) << i;
  }
  EXPECT_EQ(fleet.total_spawns(), 2u);
  EXPECT_EQ(fleet.rebinds(), 1u);
}

TEST(WorkerHostDeathTest, ServingAnUnboundFleetIsAContractViolation) {
  SKIP_WITHOUT_TRANSPORT();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // "Rebind before you serve": submitting to a fleet that was never bound
  // aborts loudly instead of shipping probes to workers with no network.
  TransportConfig config;
  config.workers = 1;
  WorkerHost fleet(config);
  EXPECT_DEATH((void)fleet.submit({0.1, 0.2, 0.3}), "precondition");
}

// ------------------------------------------------- shared-memory rings

// Serves `workload` through a WorkerHost built from `config` and returns
// the drained results (plus the host's report through `report`).
std::vector<serve::RequestResult> serve_through(
    const nn::FeedForwardNetwork& net, const TransportConfig& config,
    const std::vector<std::vector<double>>& workload,
    const serve::FaultTimeline* timeline = nullptr) {
  WorkerHost host(net, config);
  if (timeline != nullptr) host.set_timeline(*timeline);
  EXPECT_EQ(host.submit_batch(workload), workload.size());
  return host.drain();
}

void expect_bit_identical(const std::vector<serve::RequestResult>& got,
                          const std::vector<serve::RequestResult>& want,
                          const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << label << " request " << i;
    EXPECT_DOUBLE_EQ(got[i].output, want[i].output)
        << label << " request " << i;
    EXPECT_DOUBLE_EQ(got[i].completion_time, want[i].completion_time)
        << label << " request " << i;
    EXPECT_EQ(got[i].resets_sent, want[i].resets_sent)
        << label << " request " << i;
  }
}

TEST(WorkerHostRings, RingPathBitIdenticalToSocketPathAcrossWorkerCounts) {
  SKIP_WITHOUT_TRANSPORT();
  // The tentpole contract: the zero-copy ring hot path serves outputs,
  // completion times, and reset counts bit-identical to the framed socket
  // path — and to the in-process pool — at 1, 2, and 8 workers, under a
  // mid-stream fault timeline and a straggler cut.
  const auto net = transport_net(13);
  const auto workload = transport_workload(96, 43);

  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 1, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(20, 70, crash);

  serve::ServeConfig pool_config;
  pool_config.replicas = 2;
  pool_config.latency = heavy_tail();
  pool_config.straggler_cut = {2, 1};
  pool_config.seed = 123;
  serve::ReplicaPool pool(net, pool_config);
  pool.set_timeline(timeline);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto expected = pool.drain();

  for (const std::size_t workers : {1u, 2u, 8u}) {
    TransportConfig config;
    config.workers = workers;
    config.latency = heavy_tail();
    config.straggler_cut = {2, 1};
    config.seed = 123;

    config.use_rings = true;
    WorkerHost ring_host(net, config);
    if (!ring_host.rings_active()) {
      GTEST_SKIP() << "shared-memory rings unavailable on this platform";
    }
    ring_host.set_timeline(timeline);
    ASSERT_EQ(ring_host.submit_batch(workload), workload.size());
    const auto over_rings = ring_host.drain();
    expect_bit_identical(over_rings, expected, "rings vs pool");
    // Every probe rode a ring slot; the socket carried no data frames.
    EXPECT_EQ(ring_host.ring_slots_written(), workload.size())
        << "workers " << workers;
    EXPECT_EQ(ring_host.batch_frames(), 0u);
    EXPECT_EQ(ring_host.report().completed, workload.size());

    config.use_rings = false;
    const auto over_socket = serve_through(net, config, workload, &timeline);
    expect_bit_identical(over_socket, expected, "socket vs pool");
  }
}

TEST(WorkerHostRings, SigkillMidSlotLeavesTornSlotThatIsRecovered) {
  SKIP_WITHOUT_TRANSPORT();
  // Crash-consistency of the seqlock commit protocol: a worker SIGKILLed
  // between begin_seq and commit_seq leaves a detectably torn slot. The
  // host counts the tear (transport.ring_torn_recovered), resubmits the
  // probe like any unacknowledged one, and the delivered stream stays
  // bit-identical to the in-process pool — zero divergence.
  const auto net = transport_net(13);
  const auto workload = transport_workload(64, 21);

  serve::ServeConfig pool_config;
  pool_config.replicas = 2;
  pool_config.latency = heavy_tail();
  pool_config.seed = 7;
  serve::ReplicaPool pool(net, pool_config);
  ASSERT_EQ(pool.submit_batch(workload), workload.size());
  const auto expected = pool.drain();

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 7;
  config.debug_tear_result_at = 10;  // tear mid-stream
  WorkerHost host(net, config);
  if (!host.rings_active()) {
    GTEST_SKIP() << "shared-memory rings unavailable on this platform";
  }
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();

  expect_bit_identical(served, expected, "torn-slot recovery");
  EXPECT_GE(host.ring_torn_recovered(), 1u);
  EXPECT_GE(host.resubmitted(), 1u);  // the torn probe re-ran elsewhere
  EXPECT_GE(host.restarts(), 1u);     // the dead worker rejoined
  EXPECT_EQ(host.report().completed, workload.size());
}

TEST(WorkerHostRings, RebindOnRingsServesRepeatedCampaignsBitIdentically) {
  SKIP_WITHOUT_TRANSPORT();
  // The persistent-fleet contract holds on the ring path: each rebind
  // resets the rings' logical stream, and every campaign on the warm
  // fleet is bit-identical to a fresh host — with zero extra forks.
  const auto net = transport_net(11);
  const auto workload = transport_workload(48, 17);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 29;
  WorkerHost host(net, config);
  if (!host.rings_active()) {
    GTEST_SKIP() << "shared-memory rings unavailable on this platform";
  }
  const auto expected = serve_through(net, config, workload);

  for (int campaign = 0; campaign < 3; ++campaign) {
    host.rebind(net);
    ASSERT_TRUE(host.rings_active());
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();
    expect_bit_identical(served, expected, "rebound campaign");
    EXPECT_EQ(host.ring_slots_written(), workload.size());
  }
  EXPECT_EQ(host.total_spawns(), config.workers);  // rebinds never re-fork
}

TEST(WorkerHostRings, TinyRingCapacitiesWrapAroundBitIdentically) {
  SKIP_WITHOUT_TRANSPORT();
  // Wraparound torture: at 2–4 slots per ring the cursors lap dozens of
  // times and both sides hit the full/empty park paths constantly; the
  // seqlock commit words must keep every lap unambiguous.
  const auto net = transport_net(13);
  const auto workload = transport_workload(96, 43);

  TransportConfig reference_config;
  reference_config.workers = 2;
  reference_config.latency = heavy_tail();
  reference_config.seed = 123;
  reference_config.use_rings = false;
  const auto expected = serve_through(net, reference_config, workload);

  for (const std::size_t capacity : {2u, 3u, 4u}) {
    for (const std::size_t workers : {1u, 2u}) {
      TransportConfig config;
      config.workers = workers;
      config.latency = heavy_tail();
      config.seed = 123;
      config.ring_capacity = capacity;
      WorkerHost host(net, config);
      if (!host.rings_active()) {
        GTEST_SKIP() << "shared-memory rings unavailable on this platform";
      }
      ASSERT_EQ(host.submit_batch(workload), workload.size());
      const auto served = host.drain();
      expect_bit_identical(served, expected, "tiny-capacity rings");
      EXPECT_EQ(host.ring_slots_written(), workload.size())
          << "capacity " << capacity << " workers " << workers;
    }
  }
}

TEST(WorkerHostRings, FallbackPathsSelectFramesAndStayBitIdentical) {
  SKIP_WITHOUT_TRANSPORT();
  // Both fallbacks: use_rings=false pins the framed socket path outright,
  // and a network whose input dimension exceeds a ring slot falls back
  // automatically even with rings requested. Either way the deployment
  // serves frames (batch_frames > 0, zero ring slots) and results match
  // the in-process pool bit for bit.
  {
    const auto net = transport_net(13);
    const auto workload = transport_workload(48, 21);
    TransportConfig config;
    config.workers = 2;
    config.latency = heavy_tail();
    config.seed = 9;
    config.use_rings = false;
    WorkerHost host(net, config);
    EXPECT_FALSE(host.rings_active());
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();
    EXPECT_EQ(host.ring_slots_written(), 0u);
    EXPECT_GT(host.batch_frames(), 0u);

    serve::ServeConfig pool_config;
    pool_config.replicas = 2;
    pool_config.latency = heavy_tail();
    pool_config.seed = 9;
    serve::ReplicaPool pool(net, pool_config);
    ASSERT_EQ(pool.submit_batch(workload), workload.size());
    expect_bit_identical(served, pool.drain(), "use_rings=false");
  }
  {
    // kRingSlotDoubles + 1 inputs cannot ride a slot.
    Rng rng(5);
    const auto wide = nn::NetworkBuilder(kRingSlotDoubles + 1)
                          .activation(nn::ActivationKind::kSigmoid, 1.0)
                          .hidden(4)
                          .init(nn::InitKind::kUniform, 0.5)
                          .build(rng);
    Rng workload_rng(6);
    std::vector<std::vector<double>> workload(24);
    for (auto& x : workload) {
      x.resize(wide.input_dim());
      for (auto& v : x) v = workload_rng.uniform();
    }
    TransportConfig config;
    config.workers = 2;
    config.latency = heavy_tail();
    config.seed = 9;
    config.use_rings = true;  // requested, but the input cannot fit
    WorkerHost host(wide, config);
    EXPECT_FALSE(host.rings_active());
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();
    EXPECT_EQ(host.ring_slots_written(), 0u);
    EXPECT_GT(host.batch_frames(), 0u);

    serve::ServeConfig pool_config;
    pool_config.replicas = 2;
    pool_config.latency = heavy_tail();
    pool_config.seed = 9;
    serve::ReplicaPool pool(wide, pool_config);
    ASSERT_EQ(pool.submit_batch(workload), workload.size());
    expect_bit_identical(served, pool.drain(), "wide-input fallback");
  }
}

TEST(WorkerHostRings, ScriptedSigkillOnRingsMatchesSocketPath) {
  SKIP_WITHOUT_TRANSPORT();
  // The scripted crash machinery rides unchanged on top of the rings:
  // a SIGKILL window mid-replay moves requests between processes on both
  // paths and neither result stream diverges from the other.
  const auto net = transport_net(9);
  const auto workload = transport_workload(96, 31);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.seed = 41;

  config.use_rings = false;
  std::vector<serve::RequestResult> expected;
  {
    WorkerHost host(net, config);
    host.set_crash_script({{0, 24, 72}});
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    expected = host.drain();
    EXPECT_GE(host.restarts(), 1u);
  }

  config.use_rings = true;
  WorkerHost host(net, config);
  if (!host.rings_active()) {
    GTEST_SKIP() << "shared-memory rings unavailable on this platform";
  }
  host.set_crash_script({{0, 24, 72}});
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();
  expect_bit_identical(served, expected, "scripted kill rings vs socket");
  EXPECT_GE(host.restarts(), 1u);
  EXPECT_GE(host.resubmitted(), 0u);
  EXPECT_EQ(host.report().completed, workload.size());
}

// ------------------------------------------------------- TransportBackend

TEST(TransportBackend, SerialPathMatchesServeBackend) {
  SKIP_WITHOUT_TRANSPORT();
  const auto net = transport_net();
  const std::vector<double> x{0.3, 0.8, 0.1};
  fault::FaultPlan plan;
  plan.convention = theory::CapacityConvention::kTransmittedValueBound;
  plan.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0},
                  {2, 1, fault::NeuronFaultKind::kByzantine, 0.9}};

  exec::ServeBackend serve(net);
  exec::TransportBackend transport(net);
  // Same probe sequence on both serial paths: install, probe, clear,
  // probe. The request streams advance in lockstep, so every evaluation
  // must agree bit for bit.
  for (exec::EvalBackend* backend :
       std::vector<exec::EvalBackend*>{&serve, &transport}) {
    backend->install(plan);
  }
  EXPECT_DOUBLE_EQ(transport.evaluate(x).output, serve.evaluate(x).output);
  serve.clear();
  transport.clear();
  EXPECT_DOUBLE_EQ(transport.evaluate(x).output, serve.evaluate(x).output);
  EXPECT_DOUBLE_EQ(transport.nominal(x), serve.nominal(x));
}

TEST(TransportBackend, RunTrialsBitIdenticalToServeBackend) {
  SKIP_WITHOUT_TRANSPORT();
  const auto net = transport_net(7);
  fault::CampaignConfig config;
  config.attack = fault::AttackKind::kRandomCrash;
  config.trials = 12;
  config.probes_per_trial = 6;
  config.seed = 77;
  const std::vector<std::size_t> counts{1, 1};
  const auto trials = fault::make_campaign_trials(net, counts, config);

  exec::ServeBackendOptions serve_options;
  serve_options.replicas = 2;
  serve_options.latency = heavy_tail();
  serve_options.straggler_cut = {2, 1};
  exec::ServeBackend serve(net, serve_options);

  exec::TransportBackendOptions transport_options;
  transport_options.workers = 2;
  transport_options.latency = heavy_tail();
  transport_options.straggler_cut = {2, 1};
  exec::TransportBackend transport(net, transport_options);

  const auto on_serve = serve.run_trials(trials);
  const auto on_transport = transport.run_trials(trials);
  ASSERT_EQ(on_serve.size(), on_transport.size());
  for (std::size_t t = 0; t < on_serve.size(); ++t) {
    ASSERT_EQ(on_serve[t].probes.size(), on_transport[t].probes.size());
    for (std::size_t i = 0; i < on_serve[t].probes.size(); ++i) {
      EXPECT_DOUBLE_EQ(on_transport[t].probes[i].output,
                       on_serve[t].probes[i].output);
      EXPECT_DOUBLE_EQ(on_transport[t].probes[i].completion_time,
                       on_serve[t].probes[i].completion_time);
      EXPECT_EQ(on_transport[t].probes[i].resets_sent,
                on_serve[t].probes[i].resets_sent);
    }
    EXPECT_DOUBLE_EQ(on_transport[t].worst_error, on_serve[t].worst_error);
  }
}

TEST(TransportBackend, CrossCheckPinsBitEquivalenceWithSimulator) {
  SKIP_WITHOUT_TRANSPORT();
  // The campaign-scale acceptance bar: one trial stream replayed on the
  // in-process simulator and over real IPC diverges by exactly zero under
  // the transmitted-value convention.
  const auto net = transport_net(5);
  for (const auto attack : {fault::AttackKind::kRandomCrash,
                            fault::AttackKind::kRandomByzantine,
                            fault::AttackKind::kRandomSynapseByzantine}) {
    fault::CampaignConfig config;
    config.attack = attack;
    config.trials = 20;
    config.probes_per_trial = 8;
    config.capacity = 1.0;
    config.convention = theory::CapacityConvention::kTransmittedValueBound;
    config.seed = 31;
    std::vector<std::size_t> counts(net.layer_count(), 1);
    if (attack == fault::AttackKind::kRandomSynapseByzantine) {
      counts.push_back(1);
    }
    theory::FepOptions fep;
    fep.mode = attack == fault::AttackKind::kRandomCrash
                   ? theory::FailureMode::kCrash
                   : theory::FailureMode::kByzantine;

    exec::SimulatorBackend simulator(net);
    exec::TransportBackendOptions options;
    options.workers = 3;
    exec::TransportBackend transport(net, options);
    const auto check = fault::cross_check_campaign(net, counts, config, fep,
                                                   transport, simulator);
    EXPECT_EQ(check.max_divergence, 0.0)
        << "attack " << static_cast<int>(attack) << " diverged at trial "
        << check.divergent_trial << " probe " << check.divergent_probe;
    EXPECT_EQ(check.first.observed_max, check.second.observed_max);
  }
}

TEST(TransportBackend, RepeatedCampaignsReuseOneFleet) {
  SKIP_WITHOUT_TRANSPORT();
  // The acceptance bar for amortisation: five consecutive run_campaign
  // calls on ONE TransportBackend fork each worker exactly once (no crash
  // script, so no respawns), and every campaign is bit-identical to the
  // serve backend running the same trial stream.
  const auto net = transport_net(7);
  fault::CampaignConfig config;
  config.attack = fault::AttackKind::kRandomCrash;
  config.trials = 8;
  config.probes_per_trial = 4;
  config.seed = 77;
  const std::vector<std::size_t> counts{1, 1};
  theory::FepOptions fep;
  fep.mode = theory::FailureMode::kCrash;

  exec::ServeBackendOptions serve_options;
  serve_options.replicas = 2;
  serve_options.latency = heavy_tail();
  exec::ServeBackend serve(net, serve_options);

  exec::TransportBackendOptions transport_options;
  transport_options.workers = 2;
  transport_options.latency = heavy_tail();
  exec::TransportBackend transport(net, transport_options);
  EXPECT_EQ(transport.fleet(), nullptr);  // nothing forked yet

  for (std::size_t campaign = 0; campaign < 5; ++campaign) {
    const auto expected = fault::run_campaign(net, counts, config, fep, serve);
    const auto actual =
        fault::run_campaign(net, counts, config, fep, transport);
    EXPECT_EQ(actual.observed_max, expected.observed_max)
        << "campaign " << campaign;
    ASSERT_NE(transport.fleet(), nullptr);
    EXPECT_EQ(transport.fleet()->rebinds(), campaign);
    EXPECT_EQ(transport.last_report().completed,
              config.trials * config.probes_per_trial);
  }
  // Five campaigns, two forks, total — the fleet never re-forked.
  EXPECT_EQ(transport.fleet()->total_spawns(), 2u);
  EXPECT_EQ(transport.fleet()->rebinds(), 4u);
}

TEST(TransportBackend, CrossCheckHoldsAtEveryBatchSizeWithSigkillMidBatch) {
  SKIP_WITHOUT_TRANSPORT();
  // The acceptance bar for batching: Transport↔Simulator bit-equality at
  // batch sizes 1, 8, and 64, with a real SIGKILL landing mid-batch —
  // and the worker_restarts / resubmitted counters round-tripping through
  // the batch frames (the kill really happened, probes really moved).
  const auto net = transport_net(5);
  fault::CampaignConfig config;
  config.attack = fault::AttackKind::kRandomByzantine;
  config.trials = 16;
  config.probes_per_trial = 8;
  config.capacity = 1.0;
  config.convention = theory::CapacityConvention::kTransmittedValueBound;
  config.seed = 31;
  const std::vector<std::size_t> counts(net.layer_count(), 1);
  theory::FepOptions fep;
  fep.mode = theory::FailureMode::kByzantine;

  for (const std::size_t batch : {1u, 8u, 64u}) {
    exec::SimulatorBackend simulator(net);
    exec::TransportBackendOptions options;
    options.workers = 2;
    options.batch = batch;
    options.pipeline_depth = 2;
    // The batch_frames round-trip below is socket-path-specific (rings
    // ship slots, not frames); RingSigkillMidStream covers the kill over
    // the rings.
    options.use_rings = false;
    // The kill lands at request id 20 — inside a dispatched batch for
    // every batch size — and recovers at 64.
    options.crash_script = {{0, 20, 64}};
    exec::TransportBackend transport(net, options);
    const auto check = fault::cross_check_campaign(net, counts, config, fep,
                                                   transport, simulator);
    EXPECT_EQ(check.max_divergence, 0.0)
        << "batch " << batch << " diverged at trial "
        << check.divergent_trial << " probe " << check.divergent_probe;
    EXPECT_EQ(check.first.observed_max, check.second.observed_max);
    // Counter round-trip through the batch frames: exactly one scripted
    // kill, its unacknowledged probes resubmitted, everything completed.
    const auto& report = transport.last_report();
    EXPECT_EQ(report.worker_restarts, 1u) << "batch " << batch;
    EXPECT_LE(report.resubmitted, options.pipeline_depth * batch);
    EXPECT_EQ(report.completed, config.trials * config.probes_per_trial);
    EXPECT_GE(report.batch_frames,
              (config.trials * config.probes_per_trial + batch - 1) / batch);
  }
}

TEST(TransportBackend, TimelineCampaignWithRealKillsMatchesSimulator) {
  SKIP_WITHOUT_TRANSPORT();
  // Recurring catastrophic failures, one layer lower: the logical crash
  // windows also SIGKILL worker processes (ids are trial-major probe
  // indices), and the campaign still replays the simulator bit for bit on
  // 1, 2, and 8 workers — deaths move requests, never results.
  const auto net = transport_net(9);
  serve::FaultTimeline timeline;
  fault::FaultPlan burst;
  burst.neurons = {{1, 2, fault::NeuronFaultKind::kCrash, 0.0},
                   {1, 6, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(6, 12, burst);
  fault::FaultPlan late;
  late.neurons = {{2, 1, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(20, serve::FaultTimeline::kForever, late);

  fault::TimelineCampaignConfig config;
  config.trials = 28;
  config.probes_per_trial = 4;
  config.seed = 17;

  exec::SimulatorBackend simulator(net);
  const auto expected =
      fault::run_timeline_campaign(net, timeline, config, simulator);
  ASSERT_EQ(expected.per_trial_error.size(), config.trials);
  EXPECT_GT(expected.faulty_trials, 0u);

  const auto probes = static_cast<std::uint64_t>(config.probes_per_trial);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    exec::TransportBackendOptions options;
    options.workers = workers;
    // Each logical crash window kills a real worker process at its start
    // request id and recovers it at its end request id.
    options.crash_script = {{0, 6 * probes, 12 * probes},
                            {workers > 1 ? 1u : 0u, 20 * probes, 24 * probes}};
    exec::TransportBackend transport(net, options);
    const auto actual =
        fault::run_timeline_campaign(net, timeline, config, transport);
    ASSERT_EQ(actual.per_trial_error.size(), config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) {
      EXPECT_EQ(actual.per_trial_error[t], expected.per_trial_error[t])
          << "trial " << t << " on " << workers << " workers";
    }
    EXPECT_EQ(actual.faulty_trials, expected.faulty_trials);
    EXPECT_EQ(transport.last_report().worker_restarts, 2u)
        << workers << " workers";
    EXPECT_EQ(transport.last_report().completed,
              config.trials * config.probes_per_trial);
  }
}

// ------------------------------------------------ continuous monitoring

TEST(Monitoring, RebindResetsTheRegistryForPerDeploymentDeltas) {
  SKIP_WITHOUT_TRANSPORT();
  // The metric contract across deployments on one fleet: rebind() resets
  // every counter to zero (per-deployment deltas) while the registry
  // OBJECT survives — so a Snapshotter source pointer registered before
  // the rebind stays valid and simply reports the reset.
  const auto net_a = transport_net(13);
  const auto net_b = transport_net(14);
  const auto workload = transport_workload(24, 21);

  TransportConfig config;
  config.workers = 2;
  config.seed = 99;
  WorkerHost host(net_a, config);
  const obs::MetricsRegistry* registry = &host.metrics();

  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto first = host.drain();
  std::int64_t busiest_before = 0;
  for (const auto& row : registry->snapshot().counters) {
    busiest_before = std::max(busiest_before, row.value);
  }
  EXPECT_GT(busiest_before, 0);  // deployment A left real counts

  host.rebind(net_b);
  EXPECT_EQ(registry, &host.metrics());  // same registry object
  for (const auto& row : registry->snapshot().counters) {
    EXPECT_EQ(row.value, 0) << row.name << " survived the rebind";
  }
  for (const auto& row : registry->snapshot().histograms) {
    EXPECT_EQ(row.count, 0u) << row.name << " survived the rebind";
  }

  // Deployment B re-registers the same names and counts from zero.
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto second = host.drain();
  EXPECT_EQ(second.size(), workload.size());
  std::int64_t busiest_after = 0;
  for (const auto& row : registry->snapshot().counters) {
    busiest_after = std::max(busiest_after, row.value);
  }
  EXPECT_GT(busiest_after, 0);
}

TEST(Monitoring, FleetBitIdenticalAcrossWorkerCountsWithMonitoringAttached) {
  SKIP_WITHOUT_TRANSPORT();
  // The acceptance pin: snapshotter + watchdog + postmortems attached must
  // not perturb a single output bit at 1, 2, or 8 workers — monitoring
  // reads mirrors and registries, never an Rng.
  const auto net = transport_net(13);
  const auto workload = transport_workload(48, 21);
  serve::FaultTimeline timeline;
  fault::FaultPlan crash;
  crash.neurons = {{1, 3, fault::NeuronFaultKind::kCrash, 0.0}};
  timeline.add(12, 30, crash);

  TransportConfig config;
  config.workers = 2;
  config.latency = heavy_tail();
  config.straggler_cut = {2, 1};
  config.seed = 4242;
  std::vector<serve::RequestResult> reference;
  {
    WorkerHost host(net, config);
    host.set_timeline(timeline);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    reference = host.drain();
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    TransportConfig monitored = config;
    monitored.workers = workers;
    monitored.postmortem_dir = "test_transport_monitored_postmortems";
    WorkerHost host(net, monitored);
    host.set_timeline(timeline);
    host.set_crash_script({{0, 12, 30}});  // a real SIGKILL mid-window too

    obs::WatchdogConfig watch_config;
    watch_config.poll_seconds = 0.002;
    watch_config.stall_seconds = 30.0;  // healthy run: never fires
    obs::Watchdog watchdog(watch_config);
    const auto channels = attach_fleet_watchdog(host, watchdog);
    EXPECT_EQ(channels.workers, workers);

    obs::SnapshotterConfig snap_config;
    snap_config.path = "test_transport_monitored_stream.jsonl";
    snap_config.interval_seconds = 0.005;
    obs::Snapshotter snapshotter(snap_config);
    snapshotter.add_source("host", &host.metrics());
    snapshotter.add_source("watchdog", &watchdog.metrics());
    ASSERT_TRUE(snapshotter.start());
    watchdog.start();

    ASSERT_EQ(host.submit_batch(workload), workload.size());
    const auto served = host.drain();
    watchdog.stop();
    snapshotter.stop();

    ASSERT_EQ(served.size(), reference.size()) << workers << " workers";
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(served[i].id, reference[i].id);
      EXPECT_DOUBLE_EQ(served[i].output, reference[i].output)
          << "request " << i << " on " << workers << " workers";
      EXPECT_DOUBLE_EQ(served[i].completion_time,
                       reference[i].completion_time);
      EXPECT_EQ(served[i].resets_sent, reference[i].resets_sent);
    }
    EXPECT_GE(snapshotter.windows(), 1u);
    ASSERT_NE(host.postmortems(), nullptr);
    EXPECT_GE(host.postmortems()->written(), 1u);  // the scripted kill
    std::remove(snap_config.path.c_str());
  }
}

TEST(Monitoring, WatchdogForceRespawnsAWedgedWorkerBitIdentically) {
  SKIP_WITHOUT_TRANSPORT();
  // The full escalation ladder against a real wedge: SIGSTOP freezes a
  // worker that owes results, the watchdog's respawn stage SIGKILLs it,
  // and the host's normal EOF recovery resubmits + respawns — with the
  // drain's outputs bit-identical to an undisturbed run (the pin that
  // makes forced respawn safe to automate).
  const auto net = transport_net(13);
  const auto workload = transport_workload(64, 33);

  TransportConfig config;
  config.workers = 2;
  config.seed = 7;
  std::vector<serve::RequestResult> expected;
  {
    WorkerHost host(net, config);
    ASSERT_EQ(host.submit_batch(workload), workload.size());
    expected = host.drain();
  }

  WorkerHost host(net, config);
  obs::WatchdogConfig watch_config;
  watch_config.poll_seconds = 0.005;
  watch_config.stall_seconds = 0.10;
  watch_config.respawn_seconds = 0.30;
  obs::Watchdog watchdog(watch_config);
  const auto channels = attach_fleet_watchdog(host, watchdog);
  watchdog.start();

  // Wedge worker 0 BEFORE any traffic: small workloads compute into the
  // rings faster than any detector can race them, but a stopped worker
  // can never serve what the host is about to dispatch to it — its
  // host-side inflight goes nonzero (the channel reads active) while its
  // harvest odometer stays frozen, the shape only the watchdog resolves.
  const std::size_t wedged = 0;
  const int victim = host.worker_pid(wedged);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGSTOP), 0);

  ASSERT_EQ(host.submit_batch(workload), workload.size());
  std::vector<serve::RequestResult> served;
  serve::RequestResult result;
  const auto forced_respawns = [&watchdog] {
    for (const auto& row : watchdog.metrics().snapshot().counters) {
      if (row.name == "obs.watchdog.forced_respawns") return row.value;
    }
    return std::int64_t{0};
  };
  // Keep pumping: the watchdog must walk the ladder and force the
  // respawn within its deadline (generous wall bound for loaded CI).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (forced_respawns() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (host.poll(result)) served.push_back(std::move(result));
  }
  ASSERT_GE(forced_respawns(), 1) << "watchdog never fired";

  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (served.size() < workload.size() &&
         std::chrono::steady_clock::now() < drain_deadline) {
    if (host.poll(result)) served.push_back(std::move(result));
  }
  // The episode closes on the first poll that sees the post-respawn
  // odometer move; give the monitor thread a chance to observe it.
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (watchdog.health(channels.first_worker + wedged) !=
             obs::ChannelHealth::kHealthy &&
         std::chrono::steady_clock::now() < heal_deadline) {
    if (host.poll(result)) served.push_back(std::move(result));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watchdog.stop();
  EXPECT_GE(host.restarts(), 1u);  // the forced SIGKILL healed normally

  ASSERT_EQ(served.size(), expected.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, expected[i].id);
    EXPECT_DOUBLE_EQ(served[i].output, expected[i].output) << "request " << i;
  }
  EXPECT_EQ(watchdog.health(channels.first_worker + wedged),
            obs::ChannelHealth::kHealthy);  // episode closed by recovery
  std::int64_t respawns = 0;
  for (const auto& row : watchdog.metrics().snapshot().counters) {
    if (row.name == "obs.watchdog.forced_respawns") respawns = row.value;
  }
  EXPECT_GE(respawns, 1);
}

TEST(Monitoring, WorkerDeathLeavesALintableBoundedPostmortem) {
  SKIP_WITHOUT_TRANSPORT();
  // Every worker death — scripted or surprise — must leave a bounded
  // forensic artifact that strict-lints and carries the schema.
  const auto net = transport_net(13);
  const auto workload = transport_workload(40, 21);

  TransportConfig config;
  config.workers = 2;
  config.seed = 31;
  config.postmortem_dir = "test_transport_postmortems";
  config.postmortem_events = 16;
  WorkerHost host(net, config);
  host.set_crash_script({{1, 10, 20}});
  ASSERT_EQ(host.submit_batch(workload), workload.size());
  const auto served = host.drain();
  EXPECT_EQ(served.size(), workload.size());

  ASSERT_NE(host.postmortems(), nullptr);
  ASSERT_GE(host.postmortems()->written(), 1u);
  EXPECT_EQ(host.postmortems()->write_errors(), 0u);

  std::ifstream in("test_transport_postmortems/postmortem-0-w1.json");
  ASSERT_TRUE(in.is_open());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const obs::JsonLintResult lint = obs::json_lint(text);
  EXPECT_TRUE(lint.ok) << lint.error;
  EXPECT_NE(text.find("\"kind\":\"postmortem\""), std::string::npos);
  EXPECT_NE(text.find("\"worker\":1"), std::string::npos);
  EXPECT_NE(text.find("\"expected\":true"), std::string::npos);
  EXPECT_NE(text.find("\"inflight_ids\""), std::string::npos);
  EXPECT_NE(text.find("\"recent_events\""), std::string::npos);
  EXPECT_NE(text.find("\"counter_deltas_since_flush\""), std::string::npos);
  // Bounded: the host notes at most postmortem_events recent events.
  std::size_t events = 0;
  for (std::size_t at = text.find("\"ts_ns\":"); at != std::string::npos;
       at = text.find("\"ts_ns\":", at + 1)) {
    ++events;
  }
  EXPECT_LE(events, config.postmortem_events);
}

}  // namespace
}  // namespace wnf::transport
