// Unit tests for src/util: RNG determinism and distributions, thread pool,
// parallel helpers, statistics, tables, CSV, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace wnf {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal());
  const auto s = acc.summary();
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stddev, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(3.0, 0.5));
  const auto s = acc.summary();
  EXPECT_NEAR(s.mean, 3.0, 0.02);
  EXPECT_NEAR(s.stddev, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, SignIsBalanced) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.sign();
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.03);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.sample_indices(50, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    for (std::size_t index : sample) EXPECT_LT(index, 50u);
  }
}

TEST(Rng, SampleIndicesFullRange) {
  Rng rng(31);
  const auto sample = rng.sample_indices(8, 8);
  ASSERT_EQ(sample.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleIndicesZero) {
  Rng rng(31);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, SampleIndicesUniformCoverage) {
  // Every index should be chosen roughly equally often.
  Rng rng(37);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 10000; ++trial) {
    for (std::size_t index : rng.sample_indices(10, 3)) ++hits[index];
  }
  for (int count : hits) EXPECT_NEAR(count, 3000, 300);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(41);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(43);
  Rng child_a = parent.split();
  Rng child_b = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child_a.next_u64() == child_b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, OffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 10, 20, [&](std::size_t i) { sum.fetch_add(long(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + .. + 19
}

TEST(ParallelSum, MatchesSerialSum) {
  ThreadPool pool(4);
  const double total =
      parallel_sum(pool, 1000, [](std::size_t i) { return double(i); });
  EXPECT_DOUBLE_EQ(total, 999.0 * 1000.0 / 2.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  const auto s = acc.summary();
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, MergeEqualsCombined) {
  Rng rng(47);
  Accumulator combined;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    combined.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.summary().mean, combined.summary().mean, 1e-9);
  EXPECT_NEAR(left.summary().stddev, combined.summary().stddev, 1e-9);
  EXPECT_EQ(left.summary().count, combined.summary().count);
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
}

TEST(Table, FormatsRowsAndAlignment) {
  Table table({"a", "value"});
  table.add_row({"x", "1.5"});
  table.add_row({"longer", "2"});
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, NumAndSciFormat) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(0.25, 2), "0.25");
  const std::string sci = Table::sci(1234.5, 2);
  EXPECT_NE(sci.find("e+03"), std::string::npos);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/wnf_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    ASSERT_TRUE(csv.ok());
    csv.add_row(std::vector<double>{1.0, 2.5});
    csv.add_row(std::vector<std::string>{"has,comma", "has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\",\"has\"\"quote\"");
}

TEST(Cli, ParsesTypedValues) {
  const char* argv[] = {"prog", "trials=50", "lr=0.5", "name=net", "fast=true"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("trials", 1), 50);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "net");
  EXPECT_TRUE(args.get_bool("fast", false));
  args.reject_unknown();  // all keys were requested
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("trials", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.25), 0.25);
  EXPECT_EQ(args.get_string("name", "d"), "d");
  EXPECT_FALSE(args.get_bool("fast", false));
}

}  // namespace
}  // namespace wnf
